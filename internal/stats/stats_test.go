package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice mean/variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v,%v)", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 64, 512} {
		for _, p := range []float64{0.01, 0.5, 0.9} {
			var sum float64
			for k := 0; k <= n; k++ {
				sum += BinomPMF(k, n, p)
			}
			if !almost(sum, 1, 1e-9) {
				t.Errorf("PMF(n=%d,p=%v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomPMFKnown(t *testing.T) {
	// C(4,2) * 0.5^4 = 6/16
	if got := BinomPMF(2, 4, 0.5); !almost(got, 0.375, 1e-12) {
		t.Fatalf("BinomPMF(2,4,0.5) = %v", got)
	}
	if got := BinomPMF(0, 10, 0); got != 1 {
		t.Fatalf("BinomPMF(0,10,0) = %v", got)
	}
	if got := BinomPMF(10, 10, 1); got != 1 {
		t.Fatalf("BinomPMF(10,10,1) = %v", got)
	}
}

func TestBinomCDFEdges(t *testing.T) {
	if BinomCDF(-1, 10, 0.5) != 0 {
		t.Fatal("CDF(-1) != 0")
	}
	if BinomCDF(10, 10, 0.5) != 1 {
		t.Fatal("CDF(n) != 1")
	}
	if got := BinomCDF(5, 10, 0.5); !almost(got, 0.623046875, 1e-9) {
		t.Fatalf("CDF(5,10,0.5) = %v", got)
	}
}

func TestBinomCDFPlusSF(t *testing.T) {
	for k := 0; k < 64; k += 7 {
		got := BinomCDF(k, 64, 0.3) + BinomSF(k, 64, 0.3)
		if !almost(got, 1, 1e-9) {
			t.Errorf("CDF+SF at k=%d = %v", k, got)
		}
	}
}

func TestBinomTailPrecision(t *testing.T) {
	// Deep tail must not round to zero: P(X <= 10) for Bin(512, 0.5)
	// is about 1e-127 and must be representable.
	v := BinomCDF(10, 512, 0.5)
	if v == 0 || v > 1e-100 {
		t.Fatalf("deep tail CDF = %v, want tiny but nonzero", v)
	}
}

func TestBinomCDFMonotone(t *testing.T) {
	prev := -1.0
	for k := 0; k <= 128; k++ {
		v := BinomCDF(k, 128, 0.37)
		if v < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d: %v < %v", k, v, prev)
		}
		prev = v
	}
}

func TestEqualErrorRate(t *testing.T) {
	// Well separated distributions: pIntra=0.06, pInter=0.5, n=512.
	thr, far, frr := EqualErrorRate(512, 0.06, 0.5)
	if thr <= 0 || thr >= 512 {
		t.Fatalf("EER threshold = %d", thr)
	}
	if far > 1e-6 || frr > 1e-6 {
		t.Fatalf("well-separated case should be < 1ppm: FAR=%v FRR=%v", far, frr)
	}
	// Threshold should sit between the two means.
	if thr < 30 || thr > 256 {
		t.Fatalf("threshold %d outside (mean_intra, mean_inter)", thr)
	}
}

func TestFailureRateDegradesWithNoise(t *testing.T) {
	clean := FailureRate(256, 0.05, 0.5)
	noisy := FailureRate(256, 0.30, 0.5)
	if clean >= noisy {
		t.Fatalf("failure rate should grow with intra noise: %v vs %v", clean, noisy)
	}
}

func TestFARFRRBehaviour(t *testing.T) {
	// FAR grows with threshold, FRR shrinks.
	if FAR(10, 64, 0.5) >= FAR(40, 64, 0.5) {
		t.Fatal("FAR should increase with threshold")
	}
	if FRR(10, 64, 0.1) <= FRR(40, 64, 0.1) {
		t.Fatal("FRR should decrease with threshold")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 9.99, -5, 100} {
		h.Add(v)
	}
	if h.N != 6 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 3 { // 0, 1.9, clamped -5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99, clamped 100
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.Density(0); !almost(got, 0.5, 1e-12) {
		t.Fatalf("Density(0) = %v", got)
	}
}

func TestOverlapFraction(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		a.Add(2.5)
		b.Add(7.5)
	}
	if o := OverlapFraction(a, b); o != 0 {
		t.Fatalf("disjoint overlap = %v", o)
	}
	c := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		c.Add(2.5)
	}
	if o := OverlapFraction(a, c); !almost(o, 1, 1e-12) {
		t.Fatalf("identical overlap = %v", o)
	}
}

func TestChiSquareUniform(t *testing.T) {
	uniform := []int{100, 101, 99, 100, 100, 100, 99, 101}
	stat, dof := ChiSquareUniform(uniform)
	if dof != 7 {
		t.Fatalf("dof = %d", dof)
	}
	if stat > 1 {
		t.Fatalf("near-uniform counts gave chi2 = %v", stat)
	}
	skewed := []int{800, 0, 0, 0, 0, 0, 0, 0}
	stat2, _ := ChiSquareUniform(skewed)
	if stat2 < 100 {
		t.Fatalf("skewed counts gave chi2 = %v", stat2)
	}
}

func TestHammingDistance(t *testing.T) {
	a := []byte{0b10101010, 0b11111111}
	b := []byte{0b01010101, 0b11111111}
	if d := HammingDistance(a, b, 16); d != 8 {
		t.Fatalf("distance = %d, want 8", d)
	}
	if d := HammingDistance(a, b, 4); d != 4 {
		t.Fatalf("partial distance = %d, want 4", d)
	}
	if d := HammingDistance(a, a, 16); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	if f := HammingFraction(a, b, 16); !almost(f, 0.5, 1e-12) {
		t.Fatalf("fraction = %v", f)
	}
}

func TestHammingNonMultipleOf8(t *testing.T) {
	a := []byte{0xff, 0x01}
	b := []byte{0x00, 0x00}
	if d := HammingDistance(a, b, 9); d != 9 {
		t.Fatalf("9-bit distance = %d", d)
	}
	// Bits beyond nbits must be ignored.
	c := []byte{0xff, 0xfe}
	if d := HammingDistance(a, c, 9); d != 1 {
		t.Fatalf("masked distance = %d", d)
	}
}

func TestUniformity(t *testing.T) {
	if u := Uniformity([]byte{0x0f}, 8); u != 50 {
		t.Fatalf("Uniformity = %v", u)
	}
	if u := Uniformity([]byte{0xff}, 8); u != 100 {
		t.Fatalf("Uniformity = %v", u)
	}
	if u := Uniformity([]byte{0x00}, 8); u != 0 {
		t.Fatalf("Uniformity = %v", u)
	}
}

func TestBitAliasing(t *testing.T) {
	resp := [][]byte{{0b0000_0001}, {0b0000_0011}, {0b0000_0010}, {0b0000_0000}}
	al := BitAliasing(resp, 2)
	if !almost(al[0], 50, 1e-12) || !almost(al[1], 50, 1e-12) {
		t.Fatalf("aliasing = %v", al)
	}
}

func TestUniquenessPercent(t *testing.T) {
	// Two complementary 8-bit responses: 100% pairwise distance.
	resp := [][]byte{{0x00}, {0xff}}
	if u := UniquenessPercent(resp, 8); u != 100 {
		t.Fatalf("uniqueness = %v", u)
	}
	// Three responses where each pair differs in 4 of 8 bits -> 50%.
	resp = [][]byte{{0b00001111}, {0b00110011}, {0b11000011}}
	u := UniquenessPercent(resp, 8)
	if !almost(u, 50, 1e-9) {
		t.Fatalf("uniqueness = %v", u)
	}
}

func TestReliabilityPercent(t *testing.T) {
	ref := []byte{0xff}
	noisy := [][]byte{{0xff}, {0xfe}} // 0 and 1 bit errors over 8 bits
	r := ReliabilityPercent(ref, noisy, 8)
	if !almost(r, 100-100*0.5/8, 1e-9) {
		t.Fatalf("reliability = %v", r)
	}
	if r := ReliabilityPercent(ref, nil, 8); r != 100 {
		t.Fatalf("no-noise reliability = %v", r)
	}
}

func TestEntropyIdealPopulation(t *testing.T) {
	// Four chips covering all 2-bit patterns: per-bit aliasing is
	// exactly 50%, so both entropies are a full bit per position.
	resp := [][]byte{{0b00}, {0b01}, {0b10}, {0b11}}
	if h := ShannonEntropyPerBit(resp, 2); !almost(h, 1, 1e-12) {
		t.Fatalf("Shannon = %v, want 1", h)
	}
	if h := MinEntropyPerBit(resp, 2); !almost(h, 1, 1e-12) {
		t.Fatalf("min-entropy = %v, want 1", h)
	}
}

func TestEntropyDegeneratePopulation(t *testing.T) {
	// All chips identical: zero entropy.
	resp := [][]byte{{0xA5}, {0xA5}, {0xA5}}
	if h := ShannonEntropyPerBit(resp, 8); h != 0 {
		t.Fatalf("Shannon = %v, want 0", h)
	}
	if h := MinEntropyPerBit(resp, 8); h != 0 {
		t.Fatalf("min-entropy = %v, want 0", h)
	}
}

func TestMinEntropyBelowShannon(t *testing.T) {
	// Biased position: p = 0.75.
	resp := [][]byte{{1}, {1}, {1}, {0}}
	sh := ShannonEntropyPerBit(resp, 1)
	mn := MinEntropyPerBit(resp, 1)
	if !(mn < sh && mn > 0) {
		t.Fatalf("min-entropy %v should be in (0, Shannon %v)", mn, sh)
	}
	if !almost(mn, -math.Log2(0.75), 1e-12) {
		t.Fatalf("min-entropy = %v", mn)
	}
}

func TestEntropyEmptyInputs(t *testing.T) {
	if ShannonEntropyPerBit(nil, 8) != 0 || MinEntropyPerBit(nil, 8) != 0 {
		t.Fatal("empty population should have zero entropy")
	}
}

// Property: Hamming distance is a metric on fixed-length vectors —
// symmetric, zero iff equal (on masked bits), triangle inequality.
func TestHammingMetricProperties(t *testing.T) {
	f := func(a, b, c [8]byte) bool {
		ab := HammingDistance(a[:], b[:], 64)
		ba := HammingDistance(b[:], a[:], 64)
		ac := HammingDistance(a[:], c[:], 64)
		cb := HammingDistance(c[:], b[:], 64)
		return ab == ba && ab <= ac+cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the empirical binomial frequency matches BinomCDF.
func TestBinomCDFMatchesSimulation(t *testing.T) {
	r := rng.New(99)
	const n, p, draws, k = 64, 0.1, 50000, 8
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Binomial(n, p) <= k {
			hits++
		}
	}
	got := float64(hits) / draws
	want := BinomCDF(k, n, p)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical CDF %v vs analytic %v", got, want)
	}
}
