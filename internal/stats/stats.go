// Package stats implements the statistical machinery behind the PUF
// quality metrics of the Authenticache paper (Section 2.2): descriptive
// statistics, numerically stable binomial tail probabilities for the
// FAR/FRR identifiability analysis, histograms for Hamming-distance
// distributions, and a chi-square uniformity test for error-map layout
// checks.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest elements of xs.
// It panics on an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// logGamma wraps math.Lgamma, discarding the sign (arguments here are
// always positive).
func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogBinomCoeff returns ln C(n, k). It panics for k outside [0, n].
func LogBinomCoeff(n, k int) float64 {
	if k < 0 || k > n {
		panic(fmt.Sprintf("stats: C(%d,%d) undefined", n, k))
	}
	return logGamma(float64(n)+1) - logGamma(float64(k)+1) - logGamma(float64(n-k)+1)
}

// BinomPMF returns P(X = k) for X ~ Binomial(n, p), computed in log
// space so that extreme tails (needed for sub-ppm failure rates) do not
// underflow prematurely.
func BinomPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogBinomCoeff(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// BinomCDF returns P(X <= k) for X ~ Binomial(n, p): the cumulative
// binomial distribution function F_bino used in the paper's equations
// (3) and (4). The sum runs over whichever tail is shorter.
func BinomCDF(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	if k <= n/2 {
		var sum float64
		for i := 0; i <= k; i++ {
			sum += BinomPMF(i, n, p)
		}
		return math.Min(sum, 1)
	}
	var sum float64
	for i := k + 1; i <= n; i++ {
		sum += BinomPMF(i, n, p)
	}
	return math.Max(0, 1-sum)
}

// BinomSF returns the survival function P(X > k) = 1 - CDF(k), computed
// directly on the upper tail for numerical accuracy at small values.
func BinomSF(k, n int, p float64) float64 {
	if k < 0 {
		return 1
	}
	if k >= n {
		return 0
	}
	if k > n/2 {
		var sum float64
		for i := k + 1; i <= n; i++ {
			sum += BinomPMF(i, n, p)
		}
		return math.Min(sum, 1)
	}
	return math.Max(0, 1-BinomCDF(k, n, p))
}

// FAR returns the False Acceptance Rate at identification threshold t
// for n-bit responses when impostor responses differ per-bit with
// probability pInter (paper equation (3)): the probability that a
// random impostor lands within t bit errors of the enrolled response.
func FAR(t, n int, pInter float64) float64 {
	return BinomCDF(t, n, pInter)
}

// FRR returns the False Rejection Rate at threshold t for n-bit
// responses when noise flips each bit with probability pIntra (paper
// equation (4)): the probability that a genuine response exceeds t bit
// errors.
func FRR(t, n int, pIntra float64) float64 {
	return BinomSF(t, n, pIntra)
}

// EqualErrorRate finds the identification threshold minimising the
// larger of FAR and FRR, the standard Equal-Error-Rate operating point
// (paper Section 2.2.3). It returns the threshold and the two rates.
func EqualErrorRate(n int, pIntra, pInter float64) (t int, far, frr float64) {
	best := math.Inf(1)
	for cand := 0; cand <= n; cand++ {
		fa, fr := FAR(cand, n, pInter), FRR(cand, n, pIntra)
		if worst := math.Max(fa, fr); worst < best {
			best, t, far, frr = worst, cand, fa, fr
		}
	}
	return
}

// FailureRate returns max(FAR, FRR) at the EER threshold: the
// misidentification probability the paper reports against the 1 ppm
// bar.
func FailureRate(n int, pIntra, pInter float64) float64 {
	_, far, frr := EqualErrorRate(n, pIntra, pInter)
	return math.Max(far, frr)
}

// Histogram is a fixed-width binning of float64 observations.
type Histogram struct {
	Lo, Hi float64 // inclusive lower bound, exclusive upper bound
	Counts []int
	N      int // total observations, including out-of-range clamps
}

// NewHistogram creates a histogram with the given number of bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records an observation; values outside [lo, hi) are clamped into
// the first/last bin so tails remain visible.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.N++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Density returns the fraction of observations in bin i.
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// OverlapFraction estimates the overlap between two histograms over the
// same range: the summed min of per-bin densities. Two identical
// distributions overlap at 1; disjoint distributions at 0. The paper
// uses (absence of) intra/inter-die overlap as the identifiability
// argument.
func OverlapFraction(a, b *Histogram) float64 {
	if len(a.Counts) != len(b.Counts) || a.Lo != b.Lo || a.Hi != b.Hi {
		panic("stats: OverlapFraction on incompatible histograms")
	}
	var overlap float64
	for i := range a.Counts {
		overlap += math.Min(a.Density(i), b.Density(i))
	}
	return overlap
}

// ChiSquareUniform computes the chi-square statistic of observed counts
// against a uniform expectation, together with the degrees of freedom.
// The caller compares the statistic to a critical value; for the error
// map layout check (Fig 2) a statistic near dof indicates uniformity.
func ChiSquareUniform(counts []int) (stat float64, dof int) {
	if len(counts) < 2 {
		return 0, 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, len(counts) - 1
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, len(counts) - 1
}

// HammingFraction returns the fraction of differing bits between two
// equal-length bit vectors packed as bytes, considering only the first
// nbits bits. It panics on length mismatch or nbits exceeding capacity.
func HammingFraction(a, b []byte, nbits int) float64 {
	if nbits == 0 {
		return 0
	}
	d := HammingDistance(a, b, nbits)
	return float64(d) / float64(nbits)
}

// HammingDistance counts differing bits among the first nbits bits of
// the packed vectors a and b.
func HammingDistance(a, b []byte, nbits int) int {
	if len(a) != len(b) {
		panic("stats: HammingDistance length mismatch")
	}
	if nbits < 0 || nbits > len(a)*8 {
		panic("stats: HammingDistance nbits out of range")
	}
	full := nbits / 8
	d := 0
	for i := 0; i < full; i++ {
		d += popcount8(a[i] ^ b[i])
	}
	if rem := nbits % 8; rem != 0 {
		mask := byte(1<<rem - 1)
		d += popcount8((a[full] ^ b[full]) & mask)
	}
	return d
}

func popcount8(b byte) int {
	c := 0
	for b != 0 {
		b &= b - 1
		c++
	}
	return c
}

// Uniformity implements paper equation (5): the fraction of 1s in a
// response bit vector, in percent. Ideal is 50.
func Uniformity(resp []byte, nbits int) float64 {
	ones := 0
	for i := 0; i < nbits; i++ {
		if resp[i/8]&(1<<(i%8)) != 0 {
			ones++
		}
	}
	if nbits == 0 {
		return 0
	}
	return float64(ones) / float64(nbits) * 100
}

// BitAliasing implements paper equation (6): for each bit position j,
// the percentage of chips whose response bit j is 1. Ideal is 50 at
// every position. responses holds one packed response per chip.
func BitAliasing(responses [][]byte, nbits int) []float64 {
	out := make([]float64, nbits)
	if len(responses) == 0 {
		return out
	}
	for j := 0; j < nbits; j++ {
		ones := 0
		for _, r := range responses {
			if r[j/8]&(1<<(j%8)) != 0 {
				ones++
			}
		}
		out[j] = float64(ones) / float64(len(responses)) * 100
	}
	return out
}

// UniquenessPercent implements paper equation (1): the average pairwise
// Hamming distance, in percent of nbits, across k chips' responses to
// the same challenge. Ideal is 50.
func UniquenessPercent(responses [][]byte, nbits int) float64 {
	k := len(responses)
	if k < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < k-1; i++ {
		for j := i + 1; j < k; j++ {
			sum += HammingFraction(responses[i], responses[j], nbits)
			pairs++
		}
	}
	return sum / float64(pairs) * 100
}

// ShannonEntropyPerBit estimates the mean per-position Shannon entropy
// (in bits) of PUF responses across a chip population: positions whose
// bit-aliasing probability p sits at 0.5 contribute a full bit,
// strongly biased positions contribute less. responses holds one
// packed response per chip.
func ShannonEntropyPerBit(responses [][]byte, nbits int) float64 {
	if nbits == 0 || len(responses) == 0 {
		return 0
	}
	var sum float64
	for _, a := range BitAliasing(responses, nbits) {
		p := a / 100
		sum += binaryEntropy(p)
	}
	return sum / float64(nbits)
}

// MinEntropyPerBit estimates the mean per-position min-entropy (in
// bits): -log2(max(p, 1-p)) per position. Min-entropy is the measure
// key-derivation security arguments use; it is always <= Shannon.
func MinEntropyPerBit(responses [][]byte, nbits int) float64 {
	if nbits == 0 || len(responses) == 0 {
		return 0
	}
	var sum float64
	for _, a := range BitAliasing(responses, nbits) {
		p := a / 100
		pMax := math.Max(p, 1-p)
		if pMax >= 1 {
			continue // zero min-entropy position
		}
		sum += -math.Log2(pMax)
	}
	return sum / float64(nbits)
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// ReliabilityPercent implements paper equation (2): 100% minus the mean
// intra-chip Hamming fraction between the reference response and m
// noisy re-measurements. Ideal is 100.
func ReliabilityPercent(reference []byte, noisy [][]byte, nbits int) float64 {
	if len(noisy) == 0 {
		return 100
	}
	var sum float64
	for _, r := range noisy {
		sum += HammingFraction(reference, r, nbits)
	}
	return 100 - sum/float64(len(noisy))*100
}
