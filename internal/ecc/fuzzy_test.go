package ecc

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

func randomBits(r *rng.Rand, n int) []byte {
	b := make([]byte, (n+7)/8)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}

func TestFuzzyRoundTripNoiseless(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		keyBits := 32 + trial
		resp := randomBits(r, bitsNeeded(keyBits))
		secret := randomBits(r, keyBits)
		helper, err := GenerateHelper(resp, keyBits, secret)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Reproduce(resp, helper)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keyBits; i++ {
			if bit(got, i) != bit(secret, i) {
				t.Fatalf("trial %d: secret bit %d mismatched", trial, i)
			}
		}
	}
}

func TestFuzzyToleratesNoise(t *testing.T) {
	r := rng.New(2)
	const keyBits = 128
	need := bitsNeeded(keyBits)
	resp := randomBits(r, need)
	secret := randomBits(r, keyBits)
	helper, err := GenerateHelper(resp, keyBits, secret)
	if err != nil {
		t.Fatal(err)
	}
	// Flip up to 2 bits in each repetition group: must still decode.
	noisy := append([]byte(nil), resp...)
	for i := 0; i < keyBits; i++ {
		base := i * Repetition
		flips := r.Intn(3) // 0, 1 or 2
		for _, off := range r.SampleK(Repetition, flips) {
			pos := base + off
			noisy[pos/8] ^= 1 << uint(pos%8)
		}
	}
	got, err := Reproduce(noisy, helper)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keyBits; i++ {
		if bit(got, i) != bit(secret, i) {
			t.Fatalf("bit %d corrupted despite <=2 flips per group", i)
		}
	}
}

func TestFuzzyFailsBeyondCapacity(t *testing.T) {
	r := rng.New(3)
	const keyBits = 64
	resp := randomBits(r, bitsNeeded(keyBits))
	secret := randomBits(r, keyBits)
	helper, _ := GenerateHelper(resp, keyBits, secret)
	// Flip 3 of 5 bits in group 0: majority vote must flip that bit.
	noisy := append([]byte(nil), resp...)
	for pos := 0; pos < 3; pos++ {
		noisy[pos/8] ^= 1 << uint(pos%8)
	}
	got, err := Reproduce(noisy, helper)
	if err != nil {
		t.Fatal(err)
	}
	if bit(got, 0) == bit(secret, 0) {
		t.Fatal("3-of-5 flips should defeat the repetition code for that bit")
	}
}

func TestGenerateHelperValidation(t *testing.T) {
	if _, err := GenerateHelper(make([]byte, 1), 64, make([]byte, 8)); err == nil {
		t.Fatal("short response accepted")
	}
	if _, err := GenerateHelper(make([]byte, 64), 64, make([]byte, 1)); err == nil {
		t.Fatal("short secret accepted")
	}
}

func TestReproduceValidation(t *testing.T) {
	if _, err := Reproduce(make([]byte, 64), HelperData{KeyBits: 0}); err == nil {
		t.Fatal("zero key bits accepted")
	}
	if _, err := Reproduce(make([]byte, 64), HelperData{Offset: make([]byte, 1), KeyBits: 64}); err == nil {
		t.Fatal("short offset accepted")
	}
	if _, err := Reproduce(make([]byte, 1), HelperData{Offset: make([]byte, 64), KeyBits: 64}); err == nil {
		t.Fatal("short response accepted")
	}
}

func TestStrengthenKeyDeterministicAndSeparated(t *testing.T) {
	s := []byte{1, 2, 3, 4}
	a := StrengthenKey(s, "mapA")
	b := StrengthenKey(s, "mapA")
	if a != b {
		t.Fatal("same inputs produced different keys")
	}
	c := StrengthenKey(s, "mapB")
	if a == c {
		t.Fatal("different labels produced identical keys")
	}
	d := StrengthenKey([]byte{1, 2, 3, 5}, "mapA")
	if a == d {
		t.Fatal("different secrets produced identical keys")
	}
}

func TestHelperDataRevealsNothingTrivially(t *testing.T) {
	// Sanity: helper offset must not equal the secret's codeword (it is
	// masked by the response) for a random response.
	r := rng.New(4)
	const keyBits = 64
	resp := randomBits(r, bitsNeeded(keyBits))
	secret := randomBits(r, keyBits)
	helper, _ := GenerateHelper(resp, keyBits, secret)
	// Reconstruct codeword of secret and compare.
	cw := make([]byte, len(helper.Offset))
	for i := 0; i < keyBits; i++ {
		for rr := 0; rr < Repetition; rr++ {
			setBit(cw, i*Repetition+rr, bit(secret, i))
		}
	}
	if bytes.Equal(cw, helper.Offset) {
		t.Fatal("helper offset leaked the raw codeword")
	}
}
