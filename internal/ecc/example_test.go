package ecc_test

import (
	"fmt"

	"repro/internal/ecc"
)

// A 64-bit word is stored as a 72-bit SECDED codeword. One flipped
// cell is silently repaired — and logged as the correctable event
// Authenticache feeds on; two flips in a word are detected as
// uncorrectable.
func ExampleDecode() {
	cw := ecc.Encode(0xdeadbeefcafef00d)

	data, res, fixed := ecc.Decode(cw.FlipBit(17))
	fmt.Printf("single flip: %v at bit %d, data %#x\n", res, fixed, data)

	_, res, _ = ecc.Decode(cw.FlipBit(17).FlipBit(42))
	fmt.Printf("double flip: %v\n", res)
	// Output:
	// single flip: corrected at bit 17, data 0xdeadbeefcafef00d
	// double flip: uncorrectable
}

// The code-offset fuzzy extractor reproduces an exact secret from a
// noisy PUF response: the remap-key update of paper Section 4.5.
func ExampleReproduce() {
	response := []byte{0xA5, 0x5A, 0x3C, 0xC3, 0x96} // 40 bits: 8 key bits x 5
	secret := []byte{0b1011_0010}
	helper, _ := ecc.GenerateHelper(response, 8, secret)

	noisy := append([]byte(nil), response...)
	noisy[0] ^= 0x01 // one flipped response bit
	got, _ := ecc.Reproduce(noisy, helper)
	fmt.Printf("%08b\n", got[0])
	// Output:
	// 10110010
}
