package ecc

import (
	"errors"
	"fmt"
)

// Binary narrow-sense BCH codes. The repetition-code fuzzy extractor
// (fuzzy.go) is simple but pays a 5x expansion per key bit; BCH codes
// correct t errors over an n = 2^m - 1 bit block at much better rate,
// which is what the PUF key-generation literature the paper cites
// ([51]-[53]) uses in practice. bchfuzzy.go builds the code-offset
// extractor on top.
//
// Implementation: systematic encoding by polynomial division,
// syndrome computation in GF(2^m), Berlekamp-Massey for the error
// locator polynomial, and Chien search for its roots.

// BCH is a binary BCH(n, k) code correcting up to T bit errors.
type BCH struct {
	field *GF
	N     int    // codeword length: 2^m - 1
	K     int    // data length
	T     int    // designed error-correction capability
	gen   []byte // generator polynomial coefficients over GF(2), gen[i] = coeff of x^i
}

// NewBCH constructs the narrow-sense BCH code over GF(2^m) with
// designed distance 2t+1. Typical instances: NewBCH(8, 18) gives
// BCH(255, 131, t=18).
func NewBCH(m, t int) (*BCH, error) {
	if t < 1 {
		return nil, errors.New("ecc: BCH needs t >= 1")
	}
	field, err := NewGF(m)
	if err != nil {
		return nil, err
	}
	n := field.N
	if 2*t >= n {
		return nil, fmt.Errorf("ecc: t=%d too large for n=%d", t, n)
	}

	// Generator = lcm of minimal polynomials of α^1 .. α^2t. Gather
	// the union of the cyclotomic cosets of those exponents, then
	// multiply (x - α^i) over the union; the result has GF(2)
	// coefficients.
	inCoset := make([]bool, n)
	for i := 1; i <= 2*t; i++ {
		c := i % n
		for !inCoset[c] {
			inCoset[c] = true
			c = (c * 2) % n
		}
	}
	// poly over GF(2^m), poly[j] = coeff of x^j; start with 1.
	poly := []uint16{1}
	for i := 0; i < n; i++ {
		if !inCoset[i] {
			continue
		}
		root := field.Exp(i)
		next := make([]uint16, len(poly)+1)
		for j, c := range poly {
			// multiply by (x + root): x*c + root*c
			next[j+1] ^= c
			next[j] ^= field.Mul(c, root)
		}
		poly = next
	}
	gen := make([]byte, len(poly))
	for j, c := range poly {
		if c > 1 {
			return nil, fmt.Errorf("ecc: generator coefficient %d not binary", c)
		}
		gen[j] = byte(c)
	}
	k := n - (len(gen) - 1)
	if k <= 0 {
		return nil, fmt.Errorf("ecc: BCH(m=%d,t=%d) leaves no data bits", m, t)
	}
	return &BCH{field: field, N: n, K: k, T: t, gen: gen}, nil
}

// String describes the code.
func (c *BCH) String() string {
	return fmt.Sprintf("BCH(%d,%d,t=%d)", c.N, c.K, c.T)
}

// bchBit helpers: bit vectors packed LSB-first in []byte.
func getBit(b []byte, i int) byte { return (b[i/8] >> uint(i%8)) & 1 }
func putBit(b []byte, i int, v byte) {
	if v&1 == 1 {
		b[i/8] |= 1 << uint(i%8)
	} else {
		b[i/8] &^= 1 << uint(i%8)
	}
}

// EncodeBits produces the systematic n-bit codeword for k data bits:
// data occupies positions n-k .. n-1 (high end), parity the low end.
// data must carry at least K bits.
func (c *BCH) EncodeBits(data []byte) ([]byte, error) {
	if len(data)*8 < c.K {
		return nil, fmt.Errorf("ecc: need %d data bits, got %d", c.K, len(data)*8)
	}
	// Remainder of data(x) * x^(n-k) mod gen(x), computed bitwise over
	// GF(2) with a shift register.
	nk := c.N - c.K
	reg := make([]byte, nk) // reg[i] = coeff of x^i
	for i := c.K - 1; i >= 0; i-- {
		fb := getBit(data, i)
		if nk > 0 {
			fb ^= reg[nk-1]
		}
		for j := nk - 1; j > 0; j-- {
			reg[j] = reg[j-1]
			if fb == 1 && c.gen[j] == 1 {
				reg[j] ^= 1
			}
		}
		reg[0] = 0
		if fb == 1 && c.gen[0] == 1 {
			reg[0] ^= 1
		}
	}
	cw := make([]byte, (c.N+7)/8)
	for i := 0; i < nk; i++ {
		putBit(cw, i, reg[i])
	}
	for i := 0; i < c.K; i++ {
		putBit(cw, nk+i, getBit(data, i))
	}
	return cw, nil
}

// ErrBCHUncorrectable reports a codeword with more than T errors.
var ErrBCHUncorrectable = errors.New("ecc: BCH decoding failed (too many errors)")

// DecodeBits corrects up to T bit errors in a received n-bit word (in
// place on a copy) and returns the corrected codeword, the extracted
// data bits, and the number of corrected errors.
func (c *BCH) DecodeBits(received []byte) (codeword, data []byte, corrected int, err error) {
	if len(received)*8 < c.N {
		return nil, nil, 0, fmt.Errorf("ecc: need %d codeword bits, got %d", c.N, len(received)*8)
	}
	f := c.field
	// Syndromes S_j = r(α^j) for j = 1..2t.
	synd := make([]uint16, 2*c.T)
	allZero := true
	for j := 1; j <= 2*c.T; j++ {
		var s uint16
		for i := 0; i < c.N; i++ {
			if getBit(received, i) == 1 {
				s ^= f.Exp(i * j)
			}
		}
		synd[j-1] = s
		if s != 0 {
			allZero = false
		}
	}
	out := make([]byte, (c.N+7)/8)
	copy(out, received[:len(out)])
	if allZero {
		return out, c.extractData(out), 0, nil
	}

	// Berlekamp-Massey: find the error locator polynomial sigma.
	sigma := []uint16{1}
	prev := []uint16{1}
	var l, mGap int = 0, 1
	var b uint16 = 1
	for n := 0; n < 2*c.T; n++ {
		// discrepancy
		var d uint16 = synd[n]
		for i := 1; i <= l && i < len(sigma); i++ {
			d ^= f.Mul(sigma[i], synd[n-i])
		}
		if d == 0 {
			mGap++
			continue
		}
		if 2*l <= n {
			tmp := append([]uint16(nil), sigma...)
			coef := f.Div(d, b)
			sigma = polyAddShift(f, sigma, prev, coef, mGap)
			l = n + 1 - l
			prev = tmp
			b = d
			mGap = 1
		} else {
			coef := f.Div(d, b)
			sigma = polyAddShift(f, sigma, prev, coef, mGap)
			mGap++
		}
	}
	if l > c.T {
		return nil, nil, 0, ErrBCHUncorrectable
	}

	// Chien search: roots of sigma give error locations. sigma(α^-i)=0
	// means an error at position i.
	var positions []int
	for i := 0; i < c.N; i++ {
		if f.PolyEval(sigma, f.Exp(c.N-i)) == 0 {
			positions = append(positions, i)
		}
	}
	if len(positions) != l {
		return nil, nil, 0, ErrBCHUncorrectable
	}
	for _, p := range positions {
		putBit(out, p, getBit(out, p)^1)
	}
	// Verify: recompute the first syndrome on the corrected word.
	var s1 uint16
	for i := 0; i < c.N; i++ {
		if getBit(out, i) == 1 {
			s1 ^= f.Exp(i)
		}
	}
	if s1 != 0 {
		return nil, nil, 0, ErrBCHUncorrectable
	}
	return out, c.extractData(out), len(positions), nil
}

// polyAddShift returns sigma + coef * x^shift * prev.
func polyAddShift(f *GF, sigma, prev []uint16, coef uint16, shift int) []uint16 {
	size := len(prev) + shift
	if len(sigma) > size {
		size = len(sigma)
	}
	out := make([]uint16, size)
	copy(out, sigma)
	for i, c := range prev {
		out[i+shift] ^= f.Mul(coef, c)
	}
	// trim trailing zeros
	for len(out) > 1 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}

// extractData pulls the K systematic data bits out of a codeword.
func (c *BCH) extractData(cw []byte) []byte {
	data := make([]byte, (c.K+7)/8)
	nk := c.N - c.K
	for i := 0; i < c.K; i++ {
		putBit(data, i, getBit(cw, nk+i))
	}
	return data
}
