package ecc

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, d := range []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeefcafebabe, 1 << 63} {
		cw := Encode(d)
		got, res, fixed := Decode(cw)
		if res != OK || got != d || fixed != -1 {
			t.Fatalf("Decode(Encode(%#x)) = (%#x, %v, %d)", d, got, res, fixed)
		}
	}
}

func TestSingleBitCorrection(t *testing.T) {
	d := uint64(0x0123456789abcdef)
	cw := Encode(d)
	for i := 0; i < TotalBits; i++ {
		got, res, fixed := Decode(cw.FlipBit(i))
		if res != Corrected {
			t.Fatalf("bit %d: result %v, want Corrected", i, res)
		}
		if got != d {
			t.Fatalf("bit %d: data %#x, want %#x", i, got, d)
		}
		if fixed != i {
			t.Fatalf("bit %d: reported fix at %d", i, fixed)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	d := uint64(0xfeedface12345678)
	cw := Encode(d)
	for i := 0; i < TotalBits; i++ {
		for j := i + 1; j < TotalBits; j += 7 { // sample pairs
			_, res, _ := Decode(cw.FlipBit(i).FlipBit(j))
			if res != Uncorrectable {
				t.Fatalf("bits (%d,%d): result %v, want Uncorrectable", i, j, res)
			}
		}
	}
}

// Property: round trip holds for arbitrary data words.
func TestRoundTripProperty(t *testing.T) {
	f := func(d uint64) bool {
		got, res, _ := Decode(Encode(d))
		return res == OK && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any single flip of an arbitrary codeword is corrected back.
func TestSingleFlipProperty(t *testing.T) {
	f := func(d uint64, pos uint8) bool {
		i := int(pos) % TotalBits
		got, res, fixed := Decode(Encode(d).FlipBit(i))
		return res == Corrected && got == d && fixed == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any double flip is flagged uncorrectable, never silently
// miscorrected into OK.
func TestDoubleFlipProperty(t *testing.T) {
	f := func(d uint64, p1, p2 uint8) bool {
		i, j := int(p1)%TotalBits, int(p2)%TotalBits
		if i == j {
			return true
		}
		_, res, _ := Decode(Encode(d).FlipBit(i).FlipBit(j))
		return res == Uncorrectable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitSetGet(t *testing.T) {
	var cw Codeword
	for _, i := range []int{0, 1, 63, 64, 71} {
		cw = cw.SetBit(i, 1)
		if cw.Bit(i) != 1 {
			t.Fatalf("bit %d not set", i)
		}
		cw = cw.SetBit(i, 0)
		if cw.Bit(i) != 0 {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestIsCheckBit(t *testing.T) {
	wantCheck := map[int]bool{0: true, 1: true, 2: true, 4: true, 8: true, 16: true, 32: true, 64: true}
	count := 0
	for i := 0; i < TotalBits; i++ {
		if IsCheckBit(i) != wantCheck[i] {
			t.Fatalf("IsCheckBit(%d) = %v", i, IsCheckBit(i))
		}
		if IsCheckBit(i) {
			count++
		}
	}
	if count != CheckBits+1 {
		t.Fatalf("%d check bits, want %d", count, CheckBits+1)
	}
}

func TestResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Uncorrectable.String() != "uncorrectable" {
		t.Fatal("Result strings wrong")
	}
	if Result(42).String() != "Result(42)" {
		t.Fatal("unknown Result string wrong")
	}
}

func TestSyndromeZeroOnClean(t *testing.T) {
	syn, parityOK := Syndrome(Encode(0x55aa55aa55aa55aa))
	if syn != 0 || !parityOK {
		t.Fatalf("clean codeword syndrome = (%d,%v)", syn, parityOK)
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkDecodeCorrect(b *testing.B) {
	cw := Encode(0xdeadbeefcafebabe).FlipBit(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = Decode(cw)
	}
}
