package ecc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGFArithmetic(t *testing.T) {
	for _, m := range []int{4, 8, 10} {
		f, err := NewGF(m)
		if err != nil {
			t.Fatal(err)
		}
		if f.N != (1<<m)-1 {
			t.Fatalf("m=%d: N = %d", m, f.N)
		}
		// α generates the whole multiplicative group.
		seen := map[uint16]bool{}
		for i := 0; i < f.N; i++ {
			v := f.Exp(i)
			if v == 0 || seen[v] {
				t.Fatalf("m=%d: exp table degenerate at %d", m, i)
			}
			seen[v] = true
		}
		// Inverses.
		for a := uint16(1); a <= uint16(f.N); a++ {
			if f.Mul(a, f.Inv(a)) != 1 {
				t.Fatalf("m=%d: a*inv(a) != 1 for a=%d", m, a)
			}
		}
	}
}

func TestGFUnsupportedDegree(t *testing.T) {
	if _, err := NewGF(3); err == nil {
		t.Fatal("m=3 accepted")
	}
	if _, err := NewGF(11); err == nil {
		t.Fatal("m=11 accepted")
	}
}

func TestGFProperties(t *testing.T) {
	f, _ := NewGF(8)
	mask := uint16(0xff)
	assoc := func(a, b, c uint16) bool {
		a, b, c = a&mask, b&mask, c&mask
		return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	distrib := func(a, b, c uint16) bool {
		a, b, c = a&mask, b&mask, c&mask
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Error(err)
	}
	divMul := func(a, b uint16) bool {
		a, b = a&mask, b&mask
		if b == 0 {
			return true
		}
		return f.Mul(f.Div(a, b), b) == a
	}
	if err := quick.Check(divMul, nil); err != nil {
		t.Error(err)
	}
}

func TestBCHConstruction(t *testing.T) {
	cases := []struct{ m, t, wantN int }{
		{4, 1, 15}, {4, 2, 15}, {5, 3, 31}, {8, 18, 255},
	}
	for _, tc := range cases {
		c, err := NewBCH(tc.m, tc.t)
		if err != nil {
			t.Fatalf("m=%d t=%d: %v", tc.m, tc.t, err)
		}
		if c.N != tc.wantN {
			t.Fatalf("%v: N = %d", c, c.N)
		}
		if c.K <= 0 || c.K >= c.N {
			t.Fatalf("%v: K = %d", c, c.K)
		}
	}
	// Known code: BCH(255, 131, 18).
	c, _ := NewBCH(8, 18)
	if c.K != 131 {
		t.Fatalf("BCH(255,*,18) K = %d, want 131", c.K)
	}
	// Known code: BCH(15, 7, 2).
	c, _ = NewBCH(4, 2)
	if c.K != 7 {
		t.Fatalf("BCH(15,*,2) K = %d, want 7", c.K)
	}
}

func TestBCHRejectsBadParams(t *testing.T) {
	if _, err := NewBCH(4, 0); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := NewBCH(4, 8); err == nil {
		t.Fatal("2t >= n accepted")
	}
	if _, err := NewBCH(3, 1); err == nil {
		t.Fatal("unsupported field accepted")
	}
}

func randomBitsBCH(r *rng.Rand, n int) []byte {
	b := make([]byte, (n+7)/8)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	// mask stray bits
	if n%8 != 0 {
		b[len(b)-1] &= byte(1<<(n%8)) - 1
	}
	return b
}

func TestBCHRoundTripClean(t *testing.T) {
	r := rng.New(1)
	for _, params := range []struct{ m, t int }{{4, 2}, {5, 3}, {8, 18}} {
		c, err := NewBCH(params.m, params.t)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			data := randomBitsBCH(r, c.K)
			cw, err := c.EncodeBits(data)
			if err != nil {
				t.Fatal(err)
			}
			_, got, n, err := c.DecodeBits(cw)
			if err != nil {
				t.Fatalf("%v: clean decode failed: %v", c, err)
			}
			if n != 0 {
				t.Fatalf("%v: clean decode corrected %d", c, n)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v: data mismatch", c)
			}
		}
	}
}

func TestBCHCorrectsUpToT(t *testing.T) {
	r := rng.New(2)
	for _, params := range []struct{ m, t int }{{4, 2}, {5, 3}, {8, 18}} {
		c, err := NewBCH(params.m, params.t)
		if err != nil {
			t.Fatal(err)
		}
		for nerr := 1; nerr <= c.T; nerr++ {
			data := randomBitsBCH(r, c.K)
			cw, _ := c.EncodeBits(data)
			noisy := append([]byte(nil), cw...)
			for _, pos := range r.SampleK(c.N, nerr) {
				putBit(noisy, pos, getBit(noisy, pos)^1)
			}
			fixed, got, n, err := c.DecodeBits(noisy)
			if err != nil {
				t.Fatalf("%v: %d errors not corrected: %v", c, nerr, err)
			}
			if n != nerr {
				t.Fatalf("%v: corrected %d of %d", c, n, nerr)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v: wrong data after correcting %d errors", c, nerr)
			}
			if !bytes.Equal(fixed, cw) {
				t.Fatalf("%v: codeword not restored", c)
			}
		}
	}
}

func TestBCHDetectsOverload(t *testing.T) {
	r := rng.New(3)
	c, _ := NewBCH(5, 3) // BCH(31, 16, 3)
	failures := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		data := randomBitsBCH(r, c.K)
		cw, _ := c.EncodeBits(data)
		noisy := append([]byte(nil), cw...)
		for _, pos := range r.SampleK(c.N, c.T+3) {
			putBit(noisy, pos, getBit(noisy, pos)^1)
		}
		_, got, _, err := c.DecodeBits(noisy)
		if err != nil {
			failures++
			continue
		}
		if !bytes.Equal(got, data) {
			failures++ // miscorrected to another codeword: also a failure signal for this test's purposes
		}
	}
	// Beyond-capacity patterns mostly fail or miscorrect; with t+3
	// errors the decoder must reject (or land on a different codeword)
	// in the vast majority of trials.
	if failures < trials*3/4 {
		t.Fatalf("only %d/%d overloaded decodes failed", failures, trials)
	}
}

func TestBCHEncodeValidation(t *testing.T) {
	c, _ := NewBCH(4, 2)
	if _, err := c.EncodeBits([]byte{}); err == nil {
		t.Fatal("short data accepted")
	}
	if _, _, _, err := c.DecodeBits([]byte{1}); err == nil {
		t.Fatal("short codeword accepted")
	}
}

func TestBCHFuzzyRoundTrip(t *testing.T) {
	r := rng.New(4)
	code, err := NewBCH(8, 18) // BCH(255, 131, 18)
	if err != nil {
		t.Fatal(err)
	}
	response := randomBitsBCH(r, code.N)
	secret := randomBitsBCH(r, code.K)
	helper, err := GenerateBCHHelper(code, response, secret)
	if err != nil {
		t.Fatal(err)
	}
	// Up to 18 flipped response bits: exact reproduction.
	for _, flips := range []int{0, 5, 18} {
		noisy := append([]byte(nil), response...)
		for _, pos := range r.SampleK(code.N, flips) {
			putBit(noisy, pos, getBit(noisy, pos)^1)
		}
		got, err := ReproduceBCH(helper, noisy)
		if err != nil {
			t.Fatalf("flips=%d: %v", flips, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("flips=%d: secret mismatch", flips)
		}
	}
	// 30 flips: reproduction must fail loudly, not silently differ.
	noisy := append([]byte(nil), response...)
	for _, pos := range r.SampleK(code.N, 30) {
		putBit(noisy, pos, getBit(noisy, pos)^1)
	}
	if got, err := ReproduceBCH(helper, noisy); err == nil && bytes.Equal(got, secret) {
		t.Fatal("30 flips reproduced the secret (t=18)")
	}
}

func TestBCHFuzzyValidation(t *testing.T) {
	code, _ := NewBCH(4, 2)
	if _, err := GenerateBCHHelper(code, []byte{1}, make([]byte, 2)); err == nil {
		t.Fatal("short response accepted")
	}
	if _, err := GenerateBCHHelper(code, make([]byte, 2), []byte{}); err == nil {
		t.Fatal("short secret accepted")
	}
	if _, err := ReproduceBCH(BCHHelper{M: 3, T: 1}, make([]byte, 4)); err == nil {
		t.Fatal("bad field accepted")
	}
	if _, err := ReproduceBCH(BCHHelper{M: 4, T: 2, Offset: []byte{0}}, make([]byte, 4)); err == nil {
		t.Fatal("short offset accepted")
	}
}

// Rate comparison: BCH extracts far more key bits per response bit
// than the repetition code at comparable noise tolerance.
func TestBCHBeatsRepetitionRate(t *testing.T) {
	code, _ := NewBCH(8, 18)
	bchKeyBitsPer255 := code.K           // 131
	repKeyBitsPer255 := 255 / Repetition // 51
	if bchKeyBitsPer255 <= repKeyBitsPer255 {
		t.Fatalf("BCH rate %d not better than repetition %d", bchKeyBitsPer255, repKeyBitsPer255)
	}
}

func BenchmarkBCHDecode255(b *testing.B) {
	r := rng.New(1)
	c, _ := NewBCH(8, 18)
	data := randomBitsBCH(r, c.K)
	cw, _ := c.EncodeBits(data)
	noisy := append([]byte(nil), cw...)
	for _, pos := range r.SampleK(c.N, 10) {
		putBit(noisy, pos, getBit(noisy, pos)^1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, _ = c.DecodeBits(noisy)
	}
}
