package ecc

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// The adaptive error-remapping protocol (paper Section 4.5, Figure 7)
// derives a fresh logical-map key from a PUF response measured at a
// reserved voltage. PUF responses are noisy, so the server ships
// "error-correcting helper data" with the challenge; client and server
// must converge on the identical key despite a few flipped response
// bits.
//
// This file implements the standard code-offset fuzzy extractor over a
// repetition code: each key bit is spread over R response bits, the
// helper data is the XOR offset between the response and the selected
// codeword, and majority voting during reproduction absorbs up to
// ⌊R/2⌋ bit flips per key bit. The extracted bits are strengthened
// into a uniform key with HMAC-SHA256.

// Repetition is the replication factor of the repetition code. R=5
// tolerates 2 flipped response bits per key bit, comfortably above the
// <6% intra-die error rate measured on the prototype.
const Repetition = 5

// HelperData is the public value the server transmits alongside a
// remap challenge. It reveals nothing about the key given a
// high-entropy response (code-offset construction).
type HelperData struct {
	// Offset is the XOR of the response bits with the repetition
	// codeword of the secret bits, packed LSB-first.
	Offset []byte
	// KeyBits is the number of secret bits encoded.
	KeyBits int
}

// bitsNeeded returns the number of response bits a keyBits-bit secret
// consumes under the repetition code.
func bitsNeeded(keyBits int) int { return keyBits * Repetition }

// GenerateHelper runs the fuzzy-extractor "generate" step on the
// server's noiseless reference response. It returns the helper data
// and the extracted key bits (packed LSB-first), from which the caller
// derives the actual map key. response is a packed bit vector holding
// at least keyBits*Repetition bits. secretBits supplies the fresh
// secret (e.g. from the server's CSPRNG), packed the same way.
func GenerateHelper(response []byte, keyBits int, secretBits []byte) (HelperData, error) {
	need := bitsNeeded(keyBits)
	if len(response)*8 < need {
		return HelperData{}, fmt.Errorf("ecc: response carries %d bits, need %d", len(response)*8, need)
	}
	if len(secretBits)*8 < keyBits {
		return HelperData{}, fmt.Errorf("ecc: secret carries %d bits, need %d", len(secretBits)*8, keyBits)
	}
	offset := make([]byte, (need+7)/8)
	for i := 0; i < keyBits; i++ {
		s := bit(secretBits, i)
		for r := 0; r < Repetition; r++ {
			pos := i*Repetition + r
			o := bit(response, pos) ^ s
			setBit(offset, pos, o)
		}
	}
	return HelperData{Offset: offset, KeyBits: keyBits}, nil
}

// Reproduce runs the fuzzy-extractor "reproduce" step on the client's
// noisy response, recovering the secret bits by majority vote. It
// fails only if the helper data is malformed.
//
//lint:secret reproduced raw key bits
func Reproduce(noisyResponse []byte, helper HelperData) ([]byte, error) {
	need := bitsNeeded(helper.KeyBits)
	if helper.KeyBits <= 0 {
		return nil, errors.New("ecc: helper data has no key bits")
	}
	if len(helper.Offset)*8 < need {
		return nil, fmt.Errorf("ecc: helper offset carries %d bits, need %d", len(helper.Offset)*8, need)
	}
	if len(noisyResponse)*8 < need {
		return nil, fmt.Errorf("ecc: response carries %d bits, need %d", len(noisyResponse)*8, need)
	}
	secret := make([]byte, (helper.KeyBits+7)/8)
	for i := 0; i < helper.KeyBits; i++ {
		votes := 0
		for r := 0; r < Repetition; r++ {
			pos := i*Repetition + r
			if bit(noisyResponse, pos)^bit(helper.Offset, pos) == 1 {
				votes++
			}
		}
		if votes > Repetition/2 {
			setBit(secret, i, 1)
		}
	}
	return secret, nil
}

// StrengthenKey turns reproduced secret bits into a uniform 32-byte key
// via HMAC-SHA256 under a domain-separation label. Both sides run the
// identical derivation, so equal secrets yield equal keys.
func StrengthenKey(secret []byte, label string) [32]byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte("authenticache/fuzzy-extractor/v1/"))
	mac.Write([]byte(label))
	var key [32]byte
	copy(key[:], mac.Sum(nil))
	return key
}

func bit(b []byte, i int) byte { return (b[i/8] >> uint(i%8)) & 1 }
func setBit(b []byte, i int, v byte) {
	if v&1 == 1 {
		b[i/8] |= 1 << uint(i%8)
	} else {
		b[i/8] &^= 1 << uint(i%8)
	}
}
