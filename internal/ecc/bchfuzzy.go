package ecc

import "fmt"

// BCH-based code-offset fuzzy extractor: the production-grade
// alternative to the repetition code in fuzzy.go. A BCH(255,131,t=18)
// block turns 255 response bits into 131 key bits while absorbing 18
// bit flips (7% noise) — versus the repetition code's 51 key bits at
// 2-of-5 tolerance over the same response length.

// BCHHelper is the public helper data of the BCH extractor.
type BCHHelper struct {
	// Offset is response XOR codeword(secret), n bits packed.
	Offset []byte
	// M and T identify the code so the client can reconstruct it.
	M, T int
}

// GenerateBCHHelper binds a secret of code.K bits to a reference
// response of code.N bits.
func GenerateBCHHelper(code *BCH, response, secret []byte) (BCHHelper, error) {
	if len(response)*8 < code.N {
		return BCHHelper{}, fmt.Errorf("ecc: response carries %d bits, need %d", len(response)*8, code.N)
	}
	if len(secret)*8 < code.K {
		return BCHHelper{}, fmt.Errorf("ecc: secret carries %d bits, need %d", len(secret)*8, code.K)
	}
	cw, err := code.EncodeBits(secret)
	if err != nil {
		return BCHHelper{}, err
	}
	offset := make([]byte, len(cw))
	for i := 0; i < code.N; i++ {
		putBit(offset, i, getBit(response, i)^getBit(cw, i))
	}
	return BCHHelper{Offset: offset, M: code.field.M, T: code.T}, nil
}

// ReproduceBCH recovers the secret from a noisy response and the
// helper data, provided the response differs from the reference in at
// most code.T positions.
//
//lint:secret reproduced raw key bits
func ReproduceBCH(helper BCHHelper, noisyResponse []byte) ([]byte, error) {
	code, err := NewBCH(helper.M, helper.T)
	if err != nil {
		return nil, err
	}
	if len(helper.Offset)*8 < code.N {
		return nil, fmt.Errorf("ecc: helper offset carries %d bits, need %d", len(helper.Offset)*8, code.N)
	}
	if len(noisyResponse)*8 < code.N {
		return nil, fmt.Errorf("ecc: response carries %d bits, need %d", len(noisyResponse)*8, code.N)
	}
	noisyCW := make([]byte, (code.N+7)/8)
	for i := 0; i < code.N; i++ {
		putBit(noisyCW, i, getBit(noisyResponse, i)^getBit(helper.Offset, i))
	}
	_, secret, _, err := code.DecodeBits(noisyCW)
	if err != nil {
		return nil, err
	}
	return secret, nil
}
