package ecc

import "fmt"

// Galois-field arithmetic over GF(2^m), the foundation of the BCH
// codec in bch.go. Elements are represented in polynomial basis as
// uint16; exp/log tables make multiplication and inversion O(1).

// primitivePolys[m] is a primitive polynomial of degree m over GF(2),
// with the x^m term included (e.g. m=8: x^8+x^4+x^3+x^2+1 = 0x11d).
var primitivePolys = map[int]uint32{
	4:  0x13,  // x^4+x+1
	5:  0x25,  // x^5+x^2+1
	6:  0x43,  // x^6+x+1
	7:  0x89,  // x^7+x^3+1
	8:  0x11d, // x^8+x^4+x^3+x^2+1
	9:  0x211, // x^9+x^4+1
	10: 0x409, // x^10+x^3+1
}

// GF is a finite field GF(2^m).
type GF struct {
	M    int // extension degree
	N    int // multiplicative group order: 2^m - 1
	exp  []uint16
	log  []int
	poly uint32
}

// NewGF constructs GF(2^m) for 4 <= m <= 10.
func NewGF(m int) (*GF, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("ecc: no primitive polynomial for m=%d", m)
	}
	n := (1 << m) - 1
	f := &GF{M: m, N: n, poly: poly}
	f.exp = make([]uint16, 2*n)
	f.log = make([]int, n+1)
	x := uint32(1)
	for i := 0; i < n; i++ {
		f.exp[i] = uint16(x)
		f.log[x] = i
		x <<= 1
		if x&(1<<m) != 0 {
			x ^= poly
		}
	}
	// Duplicate the exp table so products of logs need no modulo.
	copy(f.exp[n:], f.exp[:n])
	return f, nil
}

// Add returns a + b (XOR in characteristic 2).
func (f *GF) Add(a, b uint16) uint16 { return a ^ b }

// Mul returns a * b.
func (f *GF) Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns a^-1; it panics on zero.
func (f *GF) Inv(a uint16) uint16 {
	if a == 0 {
		panic("ecc: inverse of zero in GF(2^m)")
	}
	return f.exp[f.N-f.log[a]]
}

// Div returns a / b; it panics when b is zero.
func (f *GF) Div(a, b uint16) uint16 {
	if b == 0 {
		panic("ecc: division by zero in GF(2^m)")
	}
	if a == 0 {
		return 0
	}
	return f.exp[(f.log[a]-f.log[b]+f.N)%f.N]
}

// Exp returns α^i for the primitive element α.
func (f *GF) Exp(i int) uint16 {
	i %= f.N
	if i < 0 {
		i += f.N
	}
	return f.exp[i]
}

// Log returns log_α(a); it panics on zero.
func (f *GF) Log(a uint16) int {
	if a == 0 {
		panic("ecc: log of zero in GF(2^m)")
	}
	return f.log[a]
}

// PolyEval evaluates a polynomial with coefficients c (c[i] is the
// coefficient of x^i) at point x.
func (f *GF) PolyEval(c []uint16, x uint16) uint16 {
	var acc uint16
	for i := len(c) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), c[i])
	}
	return acc
}
