// Package ecc implements the error-correction substrate that
// Authenticache rides on: a Hamming(72,64) SECDED code of the kind
// protecting the Itanium 9560 L2 arrays, and a repetition-code fuzzy
// extractor used for the adaptive error-remapping key update (paper
// Section 4.5).
//
// SECDED (single-error-correct, double-error-detect) extends a Hamming
// code with an overall parity bit. Every 64-bit data word is stored as
// a 72-bit codeword; a single flipped bit is silently corrected and
// logged as a correctable event, while two flipped bits raise an
// uncorrectable event. Authenticache's entire signal — which cache
// lines produce correctable events at low voltage — flows through this
// codec.
package ecc

import "fmt"

// Codeword geometry. Check bits live at power-of-two positions
// 1,2,4,...,64 of the (1-based) Hamming layout, plus an overall parity
// bit at position 0 of our 72-bit word.
const (
	DataBits  = 64
	CheckBits = 7 // Hamming check bits for 64 data bits
	TotalBits = DataBits + CheckBits + 1
)

// Result classifies the outcome of decoding one codeword.
type Result int

const (
	// OK means the codeword carried no detectable error.
	OK Result = iota
	// Corrected means exactly one bit was flipped and has been repaired.
	Corrected
	// Uncorrectable means a double (or detectable multi-bit) error.
	Uncorrectable
)

func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Codeword is a 72-bit SECDED codeword: bit 0 is overall parity, bits
// 1..71 are the Hamming layout (check bits at positions 1,2,4,8,16,32,
// 64; data bits elsewhere).
type Codeword struct {
	Lo uint64 // bits 0..63
	Hi uint8  // bits 64..71
}

// Bit returns bit i (0 <= i < 72).
func (c Codeword) Bit(i int) uint {
	if i < 64 {
		return uint(c.Lo>>uint(i)) & 1
	}
	return uint(c.Hi>>uint(i-64)) & 1
}

// SetBit returns the codeword with bit i set to v (0 or 1).
func (c Codeword) SetBit(i int, v uint) Codeword {
	if i < 64 {
		c.Lo = c.Lo&^(1<<uint(i)) | uint64(v&1)<<uint(i)
	} else {
		c.Hi = c.Hi&^(1<<uint(i-64)) | uint8(v&1)<<uint(i-64)
	}
	return c
}

// FlipBit returns the codeword with bit i inverted. It models a
// physical bit-cell fault.
func (c Codeword) FlipBit(i int) Codeword {
	if i < 64 {
		c.Lo ^= 1 << uint(i)
	} else {
		c.Hi ^= 1 << uint(i-64)
	}
	return c
}

// dataPositions[i] is the 1-based Hamming position of data bit i.
// Positions 1..71 excluding powers of two, in ascending order.
var dataPositions = func() [DataBits]int {
	var pos [DataBits]int
	i := 0
	for p := 1; p <= 71 && i < DataBits; p++ {
		if p&(p-1) == 0 { // power of two: check bit
			continue
		}
		pos[i] = p
		i++
	}
	if i != DataBits {
		panic("ecc: layout does not fit 64 data bits")
	}
	return pos
}()

// Encode produces the SECDED codeword for a 64-bit data word.
func Encode(data uint64) Codeword {
	var cw Codeword
	// Place data bits.
	for i := 0; i < DataBits; i++ {
		cw = cw.SetBit(dataPositions[i], uint(data>>uint(i))&1)
	}
	// Compute Hamming check bits: check bit at position 2^k covers all
	// positions whose k-th bit is set.
	for k := 0; k < CheckBits; k++ {
		p := 1 << uint(k)
		var parity uint
		for pos := 1; pos <= 71; pos++ {
			if pos&p != 0 && pos != p {
				parity ^= cw.Bit(pos)
			}
		}
		cw = cw.SetBit(p, parity)
	}
	// Overall parity over bits 1..71 stored at bit 0, making total
	// parity of the 72-bit word even.
	var overall uint
	for pos := 1; pos <= 71; pos++ {
		overall ^= cw.Bit(pos)
	}
	cw = cw.SetBit(0, overall)
	return cw
}

// Syndrome computes the Hamming syndrome and the overall parity of a
// (possibly corrupted) codeword. syndrome == 0 and parityOK means no
// error; syndrome != 0 and !parityOK means a single error at position
// `syndrome`; syndrome != 0 and parityOK means a double error;
// syndrome == 0 and !parityOK means the overall parity bit itself
// flipped.
func Syndrome(cw Codeword) (syndrome int, parityOK bool) {
	for k := 0; k < CheckBits; k++ {
		p := 1 << uint(k)
		var parity uint
		for pos := 1; pos <= 71; pos++ {
			if pos&p != 0 {
				parity ^= cw.Bit(pos)
			}
		}
		if parity != 0 {
			syndrome |= p
		}
	}
	var overall uint
	for pos := 0; pos <= 71; pos++ {
		overall ^= cw.Bit(pos)
	}
	return syndrome, overall == 0
}

// Decode recovers the data word from a codeword, correcting a single
// bit error if present. It reports what happened and, for Corrected
// results, the (0-based, 72-bit layout) position that was repaired;
// the position is -1 otherwise.
func Decode(cw Codeword) (data uint64, res Result, fixedBit int) {
	syn, parityOK := Syndrome(cw)
	fixedBit = -1
	switch {
	case syn == 0 && parityOK:
		res = OK
	case syn == 0 && !parityOK:
		// The overall parity bit itself flipped; data is intact.
		res = Corrected
		fixedBit = 0
		cw = cw.FlipBit(0)
	case syn != 0 && !parityOK:
		if syn > 71 {
			// Syndrome points outside the word: multi-bit corruption.
			return extract(cw), Uncorrectable, -1
		}
		res = Corrected
		fixedBit = syn
		cw = cw.FlipBit(syn)
	default: // syn != 0 && parityOK
		res = Uncorrectable
	}
	return extract(cw), res, fixedBit
}

// extract pulls the 64 data bits out of a codeword without any
// correction.
func extract(cw Codeword) uint64 {
	var data uint64
	for i := 0; i < DataBits; i++ {
		data |= uint64(cw.Bit(dataPositions[i])) << uint(i)
	}
	return data
}

// IsCheckBit reports whether 72-bit-layout position i holds ECC
// metadata (overall parity or a Hamming check bit) rather than data.
func IsCheckBit(i int) bool {
	if i == 0 {
		return true
	}
	return i&(i-1) == 0 // power of two within 1..64
}
