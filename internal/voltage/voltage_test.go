package voltage

import (
	"errors"
	"math"
	"testing"
)

// fakeRail records voltage changes.
type fakeRail struct {
	v       float64
	history []float64
}

func (r *fakeRail) SetVoltage(v float64) { r.v = v; r.history = append(r.history, v) }
func (r *fakeRail) Voltage() float64     { return r.v }

// thresholdProber reports uncorrectable events below uncMV and a given
// correctable count below corrMV, reading the rail to decide.
type thresholdProber struct {
	rail        *fakeRail
	corrMV      int
	uncMV       int
	corrCount   int
	probeCalls  int
	lastProbeMV int
}

func (p *thresholdProber) Probe() ProbeResult {
	p.probeCalls++
	mv := int(p.rail.v*1000 + 0.5)
	p.lastProbeMV = mv
	res := ProbeResult{}
	if mv < p.corrMV {
		res.Correctable = p.corrCount
	}
	if mv < p.uncMV {
		res.Uncorrectable = 3
	}
	return res
}

func newTestController(t *testing.T) (*Controller, *fakeRail) {
	t.Helper()
	rail := &fakeRail{}
	cfg := DefaultConfig()
	cfg.StepMV = 5 // keep calibration fast in tests
	return NewController(rail, cfg), rail
}

func TestNewControllerSetsNominal(t *testing.T) {
	c, rail := newTestController(t)
	if rail.v != 0.800 {
		t.Fatalf("rail at %v, want nominal", rail.v)
	}
	if _, ok := c.FloorMV(); ok {
		t.Fatal("controller claims calibration before any ran")
	}
}

func TestCalibrateFloorFindsUnsafeRegion(t *testing.T) {
	c, rail := newTestController(t)
	p := &thresholdProber{rail: rail, corrMV: 745, uncMV: 660, corrCount: 100}
	floor, err := c.CalibrateFloor(p)
	if err != nil {
		t.Fatal(err)
	}
	// First unsafe probe happens at or just below 660; floor must sit a
	// guardband above it, i.e. in (655, 670].
	if floor < 656 || floor > 670 {
		t.Fatalf("floor = %d mV", floor)
	}
	if got, ok := c.FloorMV(); !ok || got != floor {
		t.Fatal("FloorMV accessor mismatch")
	}
	// Rail restored to nominal after calibration.
	if rail.v != 0.800 {
		t.Fatalf("rail left at %v after calibration", rail.v)
	}
}

func TestCalibrateFloorCorrectableExplosion(t *testing.T) {
	c, rail := newTestController(t)
	// No uncorrectables anywhere, but correctable storm below 700 mV.
	p := &thresholdProber{rail: rail, corrMV: 700, uncMV: 0, corrCount: 100000}
	floor, err := c.CalibrateFloor(p)
	if err != nil {
		t.Fatal(err)
	}
	if floor < 696 || floor > 710 {
		t.Fatalf("floor = %d mV, explosion at <700 expected to set it near 700", floor)
	}
}

func TestCalibrateFloorAllSafe(t *testing.T) {
	c, rail := newTestController(t)
	p := &thresholdProber{rail: rail, corrMV: 0, uncMV: 0}
	floor, err := c.CalibrateFloor(p)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 500 {
		t.Fatalf("floor = %d, want search bound 500", floor)
	}
}

func TestCalibrateFloorUnsafeAtNominal(t *testing.T) {
	c, rail := newTestController(t)
	p := &thresholdProber{rail: rail, corrMV: 900, uncMV: 900, corrCount: 1}
	if _, err := c.CalibrateFloor(p); err == nil {
		t.Fatal("unsafe-at-nominal cache accepted")
	}
}

func TestRequestValidation(t *testing.T) {
	c, rail := newTestController(t)
	// Before calibration: abort.
	if err := c.Request(700); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("pre-calibration request: %v", err)
	}
	p := &thresholdProber{rail: rail, corrMV: 745, uncMV: 660, corrCount: 100}
	floor, _ := c.CalibrateFloor(p)

	if err := c.Request(floor); err != nil {
		t.Fatalf("request at floor rejected: %v", err)
	}
	if math.Abs(rail.v-float64(floor)/1000) > 1e-9 {
		t.Fatalf("rail = %v after request of %d mV", rail.v, floor)
	}
	if err := c.Request(floor - 1); !errors.Is(err, ErrAborted) {
		t.Fatalf("below-floor request: %v", err)
	}
	if err := c.Request(801); !errors.Is(err, ErrAborted) {
		t.Fatalf("above-nominal request: %v", err)
	}
	aborts, _ := c.Stats()
	if aborts != 3 {
		t.Fatalf("aborts = %d, want 3", aborts)
	}
}

func TestAbortDoesNotTouchRail(t *testing.T) {
	c, rail := newTestController(t)
	p := &thresholdProber{rail: rail, corrMV: 745, uncMV: 660, corrCount: 100}
	floor, _ := c.CalibrateFloor(p)
	if err := c.Request(floor + 10); err != nil {
		t.Fatal(err)
	}
	before := rail.v
	_ = c.Request(floor - 50)
	if rail.v != before {
		t.Fatal("aborted request changed the rail")
	}
}

func TestEmergencyRaisesToNominal(t *testing.T) {
	c, rail := newTestController(t)
	p := &thresholdProber{rail: rail, corrMV: 745, uncMV: 660, corrCount: 100}
	floor, _ := c.CalibrateFloor(p)
	_ = c.Request(floor)
	c.Emergency()
	if rail.v != 0.800 {
		t.Fatalf("rail = %v after emergency", rail.v)
	}
	_, em := c.Stats()
	if em != 1 {
		t.Fatalf("emergencies = %d", em)
	}
}

func TestRestoreNominal(t *testing.T) {
	c, rail := newTestController(t)
	p := &thresholdProber{rail: rail, corrMV: 745, uncMV: 660, corrCount: 100}
	floor, _ := c.CalibrateFloor(p)
	_ = c.Request(floor)
	c.RestoreNominal()
	if rail.v != 0.800 {
		t.Fatalf("rail = %v", rail.v)
	}
}

func TestRecalibrateTracksDrift(t *testing.T) {
	c, rail := newTestController(t)
	p := &thresholdProber{rail: rail, corrMV: 745, uncMV: 660, corrCount: 100}
	floor1, _ := c.CalibrateFloor(p)
	// Aging raised the unsafe region by 20 mV.
	p.uncMV = 680
	floor2, err := c.Recalibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	if floor2 <= floor1 {
		t.Fatalf("recalibration did not track drift: %d -> %d", floor1, floor2)
	}
}

func TestConfigValidation(t *testing.T) {
	rail := &fakeRail{}
	bad := DefaultConfig()
	bad.StepMV = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero step accepted")
			}
		}()
		NewController(rail, bad)
	}()
	bad2 := DefaultConfig()
	bad2.VMinSearch = 0.9
	defer func() {
		if recover() == nil {
			t.Fatal("inverted search range accepted")
		}
	}()
	NewController(rail, bad2)
}
