// Package voltage implements the dynamic voltage control system of the
// Authenticache prototype (paper Section 5.3).
//
// The controller owns the cache supply rail. At boot (and periodically
// thereafter) it calibrates a voltage *floor*: the lowest safe Vdd at
// which every triggered error is still correctable. Runtime requests
// from the authentication algorithm are validated against the floor —
// a challenge asking for an unsafe voltage receives an ABORT rather
// than a rail change, which is the defence against crash-inducing
// malicious challenges. An emergency path raises the rail back to
// nominal immediately when the error handler sees the correctable
// error rate explode or any uncorrectable event.
package voltage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrAborted is returned for invalid runtime Vdd requests (below the
// calibrated floor or above nominal).
var ErrAborted = errors.New("voltage: request aborted")

// ErrNotCalibrated is returned when runtime requests arrive before a
// floor has been established.
var ErrNotCalibrated = errors.New("voltage: floor not calibrated")

// Rail abstracts the physical supply the controller drives (the
// simulated SRAM array in this repo).
type Rail interface {
	// SetVoltage changes the supply immediately.
	SetVoltage(v float64)
	// Voltage reads the current supply.
	Voltage() float64
}

// ProbeResult reports what a calibration self-test observed at one
// voltage step.
type ProbeResult struct {
	Correctable   int
	Uncorrectable int
}

// Prober runs a cache self-test sweep at the current rail voltage and
// reports the ECC events it triggered. The error-handler module
// provides the implementation.
type Prober interface {
	Probe() ProbeResult
}

// Config tunes the controller.
type Config struct {
	// VNominal is the nominal (reset) supply voltage in volts.
	VNominal float64
	// VMinSearch bounds the calibration search from below; the
	// controller never drives the rail beneath it even while probing.
	VMinSearch float64
	// StepMV is the calibration step size in millivolts.
	StepMV int
	// GuardbandMV is added above the first unsafe voltage when setting
	// the floor.
	GuardbandMV int
	// CorrectableCeiling is the per-sweep correctable-event count that,
	// even without uncorrectable events, marks a voltage unsafe (the
	// "error rate explosion" emergency precursor).
	CorrectableCeiling int
}

// DefaultConfig matches the repo-wide calibration: 0.8 V nominal,
// 1 mV steps, 5 mV guardband, and an error-rate ceiling comfortably
// above the ~150-line defect population of a 4 MB cache.
func DefaultConfig() Config {
	return Config{
		VNominal:           0.800,
		VMinSearch:         0.500,
		StepMV:             1,
		GuardbandMV:        5,
		CorrectableCeiling: 512,
	}
}

// Controller is the voltage control state machine.
type Controller struct {
	mu   sync.Mutex
	cfg  Config
	rail Rail

	calibrated  bool
	floorMV     int // lowest permitted runtime Vdd, in millivolts
	emergencies int
	aborts      int
}

// NewController creates a controller over the rail. The rail is left
// at nominal.
func NewController(rail Rail, cfg Config) *Controller {
	if cfg.StepMV <= 0 {
		panic("voltage: step must be positive")
	}
	if cfg.VMinSearch >= cfg.VNominal {
		panic("voltage: search bound must sit below nominal")
	}
	c := &Controller{cfg: cfg, rail: rail}
	rail.SetVoltage(cfg.VNominal)
	return c
}

// mv converts volts to integer millivolts (rounding to nearest).
func mv(v float64) int { return int(v*1000 + 0.5) }

// volts converts integer millivolts to volts.
func volts(m int) float64 { return float64(m) / 1000 }

// CalibrateFloor runs the boot-time floor search: starting from
// nominal, the rail is lowered step by step while the prober sweeps
// the cache. The first step that yields an uncorrectable event or a
// correctable-rate explosion is unsafe; the floor is set a guardband
// above it. The rail is returned to nominal afterwards.
func (c *Controller) CalibrateFloor(p Prober) (floorMV int, err error) {
	// The probe's error handler may invoke Emergency (which takes the
	// controller lock) when it finds the unsafe region, so the search
	// loop must run unlocked; only the final state update is guarded.
	nominalMV := mv(c.cfg.VNominal)
	minMV := mv(c.cfg.VMinSearch)
	unsafeMV := -1
	for step := nominalMV; step >= minMV; step -= c.cfg.StepMV {
		c.rail.SetVoltage(volts(step))
		res := p.Probe()
		if res.Uncorrectable > 0 || res.Correctable > c.cfg.CorrectableCeiling {
			unsafeMV = step
			break
		}
	}
	if unsafeMV == nominalMV {
		c.rail.SetVoltage(c.cfg.VNominal)
		return 0, fmt.Errorf("voltage: cache unsafe at nominal %d mV", nominalMV)
	}
	candidate := minMV
	if unsafeMV >= 0 {
		candidate = unsafeMV + c.cfg.GuardbandMV
		if candidate > nominalMV {
			candidate = nominalMV
		}
		// Marginal cells trigger stochastically, so one clean probe is
		// not proof of safety: confirm the candidate with repeated
		// sweeps and push it up until it verifies clean (the error
		// handler and controller calibrate "in tandem", Section 5.3).
		const confirmSweeps = 3
	verify:
		for candidate < nominalMV {
			for i := 0; i < confirmSweeps; i++ {
				c.rail.SetVoltage(volts(candidate))
				res := p.Probe()
				if res.Uncorrectable > 0 || res.Correctable > c.cfg.CorrectableCeiling {
					candidate += c.cfg.StepMV
					continue verify
				}
			}
			break
		}
	}
	c.rail.SetVoltage(c.cfg.VNominal)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.floorMV = candidate
	c.calibrated = true
	return c.floorMV, nil
}

// FloorMV returns the calibrated floor in millivolts and whether
// calibration has run.
func (c *Controller) FloorMV() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.floorMV, c.calibrated
}

// Request validates and applies a runtime Vdd request from the
// authentication algorithm. Requests outside [floor, nominal] abort
// without touching the rail.
func (c *Controller) Request(vddMV int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.calibrated {
		c.aborts++
		return ErrNotCalibrated
	}
	if vddMV < c.floorMV || vddMV > mv(c.cfg.VNominal) {
		c.aborts++
		return fmt.Errorf("%w: %d mV outside [%d, %d]", ErrAborted, vddMV, c.floorMV, mv(c.cfg.VNominal))
	}
	c.rail.SetVoltage(volts(vddMV))
	return nil
}

// RestoreNominal returns the rail to the nominal voltage, e.g. when
// handing the cores back to the OS.
func (c *Controller) RestoreNominal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rail.SetVoltage(c.cfg.VNominal)
}

// Emergency immediately raises the rail to nominal. The error handler
// invokes it when tracked error rates exceed the emergency threshold
// (paper Section 5.2).
func (c *Controller) Emergency() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.emergencies++
	c.rail.SetVoltage(c.cfg.VNominal)
}

// Stats reports abort and emergency counters.
func (c *Controller) Stats() (aborts, emergencies int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborts, c.emergencies
}

// Recalibrate re-runs the floor search, accounting for environmental
// drift (aging, temperature) since boot. It is the "periodic
// recalibration" of Section 5.3.
func (c *Controller) Recalibrate(p Prober) (floorMV int, err error) {
	c.mu.Lock()
	c.calibrated = false
	c.mu.Unlock()
	return c.CalibrateFloor(p)
}
