package sram

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/variation"
)

func newTestArray(t *testing.T, chipSeed uint64, lines int) *Array {
	t.Helper()
	m := variation.NewModel(chipSeed, variation.DefaultParams())
	return New(m, lines, chipSeed^0xabcdef)
}

func TestReadBackAtNominal(t *testing.T) {
	a := newTestArray(t, 1, 4096)
	pattern := [WordsPerLine]uint64{1, 2, 3, 4, 5, 6, 7, 8}
	a.WriteLine(42, pattern)
	words, worst := a.ReadLine(42)
	if worst != ecc.OK {
		t.Fatalf("nominal-voltage read result = %v", worst)
	}
	if words != pattern {
		t.Fatalf("read back %v, want %v", words, pattern)
	}
}

func TestUnwrittenLinesReadZero(t *testing.T) {
	a := newTestArray(t, 2, 64)
	words, worst := a.ReadLine(7)
	if worst != ecc.OK || words != [WordsPerLine]uint64{} {
		t.Fatalf("unwritten line returned (%v,%v)", words, worst)
	}
}

func TestNoErrorsAtNominalVoltage(t *testing.T) {
	a := newTestArray(t, 3, 8192)
	for l := 0; l < 8192; l += 64 {
		if res := a.TestLine(l, 0xaaaaaaaaaaaaaaaa); res != ecc.OK {
			t.Fatalf("line %d failed at nominal Vdd: %v", l, res)
		}
	}
	if a.Log().Correctable+a.Log().Uncorrectable != 0 {
		t.Fatalf("events logged at nominal voltage")
	}
}

// Lowering Vdd into the defect band must produce correctable errors in
// some lines, with corrected data still intact — ECC masks the fault.
func TestCorrectableErrorsAtLowVoltage(t *testing.T) {
	a := newTestArray(t, 4, 65536)
	p := a.model.Params()
	a.SetVoltage(p.DefectBandHi - 0.065)
	pattern := [WordsPerLine]uint64{}
	for i := range pattern {
		pattern[i] = 0x5555555555555555
	}
	failing := 0
	for l := 0; l < 65536; l++ {
		prof := a.Profile(l)
		if !prof.FailsAt(a.Voltage(), a.Environment(), p) {
			continue
		}
		failing++
		a.WriteLine(l, pattern)
		words, worst := a.ReadLine(l)
		if worst == ecc.Uncorrectable {
			t.Fatalf("line %d uncorrectable in defect band", l)
		}
		if words != pattern {
			t.Fatalf("line %d data corrupted despite ECC", l)
		}
	}
	if failing < 60 || failing > 200 {
		t.Fatalf("failing lines = %d, want ~122", failing)
	}
	if a.Log().Correctable == 0 {
		t.Fatal("no correctable events logged")
	}
	if a.Log().Uncorrectable != 0 {
		t.Fatalf("%d uncorrectable events in the correctable band", a.Log().Uncorrectable)
	}
}

// Far below the bulk onset everything fails and double-bit errors
// appear: the region the voltage controller must never enter.
func TestUncorrectableStormDeepBelowBulk(t *testing.T) {
	a := newTestArray(t, 5, 4096)
	a.SetVoltage(0.40)
	unc := 0
	for l := 0; l < 4096; l++ {
		if a.TestLine(l, 0) == ecc.Uncorrectable {
			unc++
		}
	}
	if unc == 0 {
		t.Fatal("no uncorrectable errors deep below bulk onset")
	}
	if a.Log().Uncorrectable == 0 {
		t.Fatal("uncorrectable events not logged")
	}
}

func TestEventLocationsMatchProfile(t *testing.T) {
	a := newTestArray(t, 6, 65536)
	p := a.model.Params()
	a.SetVoltage(p.DefectBandHi - 0.065)
	// Find one failing line with a comfortable margin.
	target := -1
	for l := 0; l < 65536; l++ {
		prof := a.Profile(l)
		if prof.Margin(a.Voltage(), a.Environment(), p) > 0.03 {
			target = l
			break
		}
	}
	if target < 0 {
		t.Skip("no deep-margin line in this seed")
	}
	prof := a.Profile(target)
	for attempt := 0; attempt < 16; attempt++ {
		a.TestLine(target, 0xffffffffffffffff)
	}
	events := a.Log().Drain()
	found := false
	for _, e := range events {
		if e.Line != target {
			continue
		}
		found = true
		if e.Word != prof.Loc[0].Word || e.Bit != prof.Loc[0].Bit {
			t.Fatalf("event at (word=%d,bit=%d), profile says (%d,%d)",
				e.Word, e.Bit, prof.Loc[0].Word, prof.Loc[0].Bit)
		}
	}
	if !found {
		t.Fatal("deep-margin line never triggered in 16 attempts")
	}
}

// Persistence: the same physical chip re-measured with a different
// measurement seed exposes (almost) the same failing lines.
func TestErrorMapPersistsAcrossMeasurements(t *testing.T) {
	model := variation.NewModel(7, variation.DefaultParams())
	p := model.Params()
	vtest := p.DefectBandHi - 0.065

	collect := func(measSeed uint64) map[int]bool {
		a := New(model, 65536, measSeed)
		a.SetVoltage(vtest)
		fails := map[int]bool{}
		for l := 0; l < 65536; l++ {
			// 8 attempts per line, like the conservative prototype mode.
			for att := 0; att < 8; att++ {
				if a.TestLine(l, 0xa5a5a5a5a5a5a5a5) != ecc.OK {
					fails[l] = true
					break
				}
			}
		}
		return fails
	}
	m1 := collect(100)
	m2 := collect(200)
	inter := 0
	for l := range m1 {
		if m2[l] {
			inter++
		}
	}
	union := len(m1) + len(m2) - inter
	if union == 0 {
		t.Fatal("no failing lines found")
	}
	jaccard := float64(inter) / float64(union)
	if jaccard < 0.80 {
		t.Fatalf("error maps not persistent: jaccard = %v (|m1|=%d |m2|=%d)", jaccard, len(m1), len(m2))
	}
}

func TestErrorLogOverflow(t *testing.T) {
	l := NewErrorLog(2)
	for i := 0; i < 5; i++ {
		l.Record(Event{Line: i, Type: EventCorrectable})
	}
	if l.Len() != 2 {
		t.Fatalf("buffered = %d, want 2", l.Len())
	}
	if l.Overflowed != 3 {
		t.Fatalf("overflowed = %d, want 3", l.Overflowed)
	}
	if l.Correctable != 5 {
		t.Fatalf("counter = %d, want 5", l.Correctable)
	}
	ev := l.Drain()
	if len(ev) != 2 || l.Len() != 0 {
		t.Fatal("drain did not clear buffer")
	}
	if l.Correctable != 5 {
		t.Fatal("drain reset counters")
	}
	l.Reset()
	if l.Correctable != 0 || l.Overflowed != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestPanicsOnBadLine(t *testing.T) {
	a := newTestArray(t, 8, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range line did not panic")
		}
	}()
	a.ReadWord(16, 0)
}

func TestPanicsOnBadWord(t *testing.T) {
	a := newTestArray(t, 8, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range word did not panic")
		}
	}()
	a.ReadWord(0, WordsPerLine)
}

func TestEventTypeString(t *testing.T) {
	if EventCorrectable.String() != "correctable" ||
		EventUncorrectable.String() != "uncorrectable" {
		t.Fatal("EventType strings wrong")
	}
}

func BenchmarkTestLineClean(b *testing.B) {
	m := variation.NewModel(1, variation.DefaultParams())
	a := New(m, 65536, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TestLine(i&0xffff, 0x5555555555555555)
	}
}
