// Package sram simulates an ECC-protected SRAM data array operating at
// a scaled supply voltage — the physical substrate the Authenticache
// prototype probes through firmware.
//
// The array stores 64-byte lines as eight 64-bit words, each protected
// by a Hamming(72,64) SECDED codeword (package ecc). The variation
// model (package variation) assigns every line its weak cells; when a
// word is read while the supply voltage sits below a weak cell's
// effective onset, that cell's bit may flip, and the ECC decode either
// corrects it (raising a correctable machine-check event, the PUF
// signal) or flags it uncorrectable (two failing cells in one word,
// which the voltage controller treats as an emergency).
//
// Fault manifestation is stochastic per read, governed by
// variation.TriggerProbability: lines far below their onset trigger
// essentially always, marginal lines are flaky — reproducing the
// persistence behaviour of Figure 11.
package sram

import (
	"fmt"
	"sync"

	"repro/internal/ecc"
	"repro/internal/rng"
	"repro/internal/variation"
)

// WordsPerLine is the number of 64-bit data words in a 64-byte line.
const WordsPerLine = 8

// EventType classifies a logged ECC event.
type EventType int

const (
	// EventCorrectable is a single-bit error repaired by SECDED.
	EventCorrectable EventType = iota
	// EventUncorrectable is a detected double-bit error.
	EventUncorrectable
)

func (e EventType) String() string {
	switch e {
	case EventCorrectable:
		return "correctable"
	case EventUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is one ECC machine-check record, analogous to the per-bank
// MCA logs firmware reads on the prototype.
type Event struct {
	Line int
	Word uint8
	Bit  uint8 // position within the 72-bit codeword
	Type EventType
}

// ErrorLog accumulates ECC events. It mirrors a hardware error bank:
// bounded capacity with an overflow counter, plus running totals.
type ErrorLog struct {
	mu            sync.Mutex
	events        []Event
	capacity      int
	Overflowed    int
	Correctable   int
	Uncorrectable int
}

// NewErrorLog creates a log holding at most capacity detailed events
// (older events are never dropped; past capacity only counters grow).
func NewErrorLog(capacity int) *ErrorLog {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &ErrorLog{capacity: capacity}
}

// Record appends an event, tracking overflow beyond capacity.
func (l *ErrorLog) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch e.Type {
	case EventCorrectable:
		l.Correctable++
	case EventUncorrectable:
		l.Uncorrectable++
	}
	if len(l.events) < l.capacity {
		l.events = append(l.events, e)
	} else {
		l.Overflowed++
	}
}

// Drain returns and clears the buffered events; counters keep running.
func (l *ErrorLog) Drain() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.events
	l.events = nil
	return out
}

// Len reports the number of buffered (undrained) events.
func (l *ErrorLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset clears events and counters.
func (l *ErrorLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.Overflowed = 0
	l.Correctable = 0
	l.Uncorrectable = 0
}

// Array is one ECC-protected SRAM array.
type Array struct {
	model *variation.Model
	lines int
	vdd   float64
	env   variation.Environment
	meas  *rng.Rand
	log   *ErrorLog

	// data holds written lines sparsely; untouched lines read as zero.
	data map[int]*[WordsPerLine]uint64

	// profCache memoises line profiles, which are deterministic.
	profCache map[int]variation.LineProfile
}

// New creates an array of `lines` cache lines over the given variation
// model. measSeed seeds the measurement-noise stream (per-read fault
// trigger draws); two arrays over the same model but different
// measSeeds represent re-measurements of the same physical silicon.
func New(model *variation.Model, lines int, measSeed uint64) *Array {
	if lines <= 0 {
		panic("sram: array needs at least one line")
	}
	return &Array{
		model:     model,
		lines:     lines,
		vdd:       model.Params().VNominal,
		meas:      rng.New(measSeed),
		log:       NewErrorLog(0),
		data:      make(map[int]*[WordsPerLine]uint64),
		profCache: make(map[int]variation.LineProfile),
	}
}

// Lines returns the number of cache lines in the array.
func (a *Array) Lines() int { return a.lines }

// Log exposes the ECC event log.
func (a *Array) Log() *ErrorLog { return a.log }

// SetVoltage sets the array supply voltage in volts.
func (a *Array) SetVoltage(v float64) { a.vdd = v }

// Voltage returns the current supply voltage.
func (a *Array) Voltage() float64 { return a.vdd }

// SetEnvironment sets operating conditions (temperature, aging).
func (a *Array) SetEnvironment(env variation.Environment) { a.env = env }

// Environment returns the current operating conditions.
func (a *Array) Environment() variation.Environment { return a.env }

// Profile returns the (memoised) variation profile of a line.
func (a *Array) Profile(line int) variation.LineProfile {
	if p, ok := a.profCache[line]; ok {
		return p
	}
	p := a.model.Line(line)
	a.profCache[line] = p
	return p
}

func (a *Array) checkLine(line int) {
	if line < 0 || line >= a.lines {
		panic(fmt.Sprintf("sram: line %d out of range [0,%d)", line, a.lines))
	}
}

// WriteLine stores a full line of data. Writing is modelled as
// fault-free: the prototype writes test patterns at a voltage where
// write margins still hold, and retention at low Vdd is what fails.
func (a *Array) WriteLine(line int, words [WordsPerLine]uint64) {
	a.checkLine(line)
	w := words
	a.data[line] = &w
}

// ReadWord reads one 64-bit word of a line through the ECC pipeline at
// the current voltage, logging any ECC event. It returns the
// (possibly corrected) data and the decode result.
func (a *Array) ReadWord(line int, word int) (uint64, ecc.Result) {
	a.checkLine(line)
	if word < 0 || word >= WordsPerLine {
		panic(fmt.Sprintf("sram: word %d out of range", word))
	}
	var stored uint64
	if d, ok := a.data[line]; ok {
		stored = d[word]
	}

	// Decide which weak cells of this word flip on this read.
	var flips []int
	prof := a.Profile(line)
	for i := 0; i < 3; i++ {
		if int(prof.Loc[i].Word) != word {
			continue
		}
		margin := prof.EffectiveOnset(i, a.env, a.model.Params()) - a.vdd
		if p := variation.TriggerProbability(margin); p > 0 && a.meas.Bool(p) {
			flips = append(flips, int(prof.Loc[i].Bit))
		}
	}
	if len(flips) == 0 {
		// Fault-free fast path: Decode(Encode(x)) is the identity, so
		// skip the codec entirely (it dominates full-cache sweep time).
		return stored, ecc.OK
	}

	cw := ecc.Encode(stored)
	for _, b := range flips {
		cw = cw.FlipBit(b)
	}
	data, res, fixed := ecc.Decode(cw)
	switch res {
	case ecc.Corrected:
		a.log.Record(Event{Line: line, Word: uint8(word), Bit: uint8(fixed), Type: EventCorrectable})
	case ecc.Uncorrectable:
		a.log.Record(Event{Line: line, Word: uint8(word), Type: EventUncorrectable})
	}
	return data, res
}

// ReadLine reads all words of a line, returning the worst decode
// result observed (OK < Corrected < Uncorrectable).
func (a *Array) ReadLine(line int) (words [WordsPerLine]uint64, worst ecc.Result) {
	for w := 0; w < WordsPerLine; w++ {
		d, res := a.ReadWord(line, w)
		words[w] = d
		if res > worst {
			worst = res
		}
	}
	return
}

// triggerCutoff mirrors variation.TriggerProbability's hard zero: a
// cell whose onset sits more than 20 mV below the supply can never
// flip.
const triggerCutoff = 0.020

// TestLine performs one write-then-read self-test pass over a line
// with the given pattern, reporting the worst ECC result. This is the
// primitive the error handler's targeted testing builds on (paper
// Section 5.2).
func (a *Array) TestLine(line int, pattern uint64) ecc.Result {
	a.checkLine(line)
	// Fast path: if even the line's weakest cell sits beyond the
	// trigger cutoff, no fault can manifest and the write/read pass is
	// a guaranteed-clean no-op. This keeps full-cache sweeps (65 K+
	// lines, of which only ~150 are interesting) tractable without
	// changing observable behaviour.
	prof := a.Profile(line)
	if prof.EffectiveOnset(0, a.env, a.model.Params())+triggerCutoff < a.vdd {
		return ecc.OK
	}
	var words [WordsPerLine]uint64
	for w := range words {
		words[w] = pattern
	}
	a.WriteLine(line, words)
	_, worst := a.ReadLine(line)
	return worst
}
