package auth

import (
	"testing"

	"repro/internal/errormap"
	"repro/internal/rng"
)

func TestWireSessionKeyEstablishment(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	ok, key1, err := wc.AuthenticateSession(ctx, resp)
	if err != nil || !ok {
		t.Fatalf("session auth: ok=%v err=%v", ok, err)
	}
	if key1 == ([32]byte{}) {
		t.Fatal("zero session key")
	}
	ok, key2, err := wc.AuthenticateSession(ctx, resp)
	if err != nil || !ok {
		t.Fatalf("second session auth: ok=%v err=%v", ok, err)
	}
	if key1 == key2 {
		t.Fatal("session keys repeated across transactions")
	}
}

func TestWireSessionKeyRequiresMatchingRemapKey(t *testing.T) {
	// A client with a stale remap key computes a different session key
	// — but it also answers in the wrong logical space, so the server
	// rejects it before any confirmation is exchanged. Verify the
	// rejection is clean (no key, no error).
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	stale := NewResponder(resp.ID, NewSimDevice(fixtureMap()), [32]byte{1, 2, 3})
	ok, key, err := wc.AuthenticateSession(ctx, stale)
	if err != nil {
		t.Fatal(err)
	}
	if ok || key != ([32]byte{}) {
		t.Fatal("stale-key client established a session")
	}
}

// fixtureMap rebuilds the same map wireFixture(680, 700) enrolls, so
// the stale responder has genuine silicon but the wrong key.
func fixtureMap() *errormap.Map {
	g := errormap.NewGeometry(16384)
	m := errormap.NewMap(g)
	r := rng.New(77)
	m.AddPlane(680, errormap.RandomPlane(g, 100, r))
	m.AddPlane(700, errormap.RandomPlane(g, 100, r))
	return m
}
