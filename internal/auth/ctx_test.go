package auth

import "context"

// ctx is the shared background context for tests; cancellation
// behaviour gets dedicated contexts in context_test.go.
var ctx = context.Background()
