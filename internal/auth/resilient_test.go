package auth

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/rng"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"unavailable", authErrf(CodeUnavailable, "d", "%w: shed", ErrUnavailable), true},
		{"unknown client", authErrf(CodeUnknownClient, "d", "%w: d", ErrUnknownClient), false},
		{"already enrolled", authErr(CodeAlreadyEnrolled, "d", ErrAlreadyEnrolled), false},
		{"unknown challenge", authErr(CodeUnknownChallenge, "d", ErrUnknownChallenge), false},
		{"exhausted", authErr(CodeExhausted, "d", ErrExhausted), false},
		{"no remap pending", authErr(CodeNoRemapPending, "d", ErrNoRemapPending), false},
		{"bad plane", authErr(CodeBadPlane, "d", ErrBadPlane), false},
		{"invalid request", authErrf(CodeInvalidRequest, "d", "auth: nope"), false},
		{"canceled", &AuthError{Code: CodeCanceled, Err: context.Canceled}, false},
		{"internal", authErrf(CodeInternal, "d", "auth: boom"), false},
		{"eof", io.EOF, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true},
		{"closed pipe", io.ErrClosedPipe, true},
		{"net closed", net.ErrClosed, true},
		{"econnreset", syscall.ECONNRESET, true},
		{"epipe", syscall.EPIPE, true},
		{"econnrefused", syscall.ECONNREFUSED, true},
		{"injected drop", fault.ErrInjectedDrop, true},
		{"plain error", errorsNew("mystery"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryableNeverRetriesBurnedChallenge pins the non-retryability
// of every protocol verdict a response-bearing transaction can end
// with: once a response has been revealed, no error the server sends
// about it may trigger a replay.
func TestRetryableNeverRetriesBurnedChallenge(t *testing.T) {
	burnedVerdicts := []error{
		authErr(CodeUnknownChallenge, "d", ErrUnknownChallenge),
		authErr(CodeExhausted, "d", ErrExhausted),
		authErrf(CodeInvalidRequest, "d", "auth: response shape"),
		authErrf(CodeInternal, "d", "auth: verify failed"),
	}
	for _, err := range burnedVerdicts {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true; a burned-challenge verdict must never be retried", err)
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	seq := func() []time.Duration {
		r := rng.New(p.Seed)
		var out []time.Duration
		for n := 1; n <= 9; n++ {
			out = append(out, p.Delay(n, r))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d: delay not deterministic: %v vs %v", i+1, a[i], b[i])
		}
		if a[i] > p.MaxDelay {
			t.Fatalf("retry %d: delay %v exceeds cap %v", i+1, a[i], p.MaxDelay)
		}
		if a[i] <= 0 {
			t.Fatalf("retry %d: non-positive delay %v", i+1, a[i])
		}
	}
	// Growth: late delays sit near the cap despite jitter.
	if a[8] < p.MaxDelay/4 {
		t.Fatalf("final delay %v did not grow toward the %v cap", a[8], p.MaxDelay)
	}
}

// startWireFaulty serves srv behind a fault-injecting listener.
func startWireFaulty(t *testing.T, ws *WireServer, plan fault.ConnPlan) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.NewListener(l, plan)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ws.Serve(ctx, fl)
	}()
	return l.Addr().String(), func() {
		ws.Close()
		<-done
	}
}

// fastPolicy keeps retry latency negligible in tests.
func fastPolicy() RetryPolicy {
	return RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 11}
}

func TestResilientAuthenticateSurvivesDrops(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWireFaulty(t, NewWireServer(srv), fault.ConnPlan{DropProb: 0.1, Seed: 1234})
	defer stop()

	rc := NewResilientClient(addr, fastPolicy(), Dial)
	defer rc.Close()
	for i := 0; i < 30; i++ {
		ok, err := rc.Authenticate(ctx, resp)
		if err != nil {
			t.Fatalf("round %d: %v (stats %+v)", i, err, rc.Stats())
		}
		if !ok {
			t.Fatalf("round %d: genuine client rejected", i)
		}
	}
	if rc.Stats().Retries == 0 {
		t.Fatal("30 rounds at 10% drop rate injected no retries; the harness is not exercising faults")
	}
}

func TestResilientRemapSurvivesDrops(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWireFaulty(t, NewWireServer(srv), fault.ConnPlan{DropProb: 0.15, Seed: 99})
	defer stop()

	rc := NewResilientClient(addr, fastPolicy(), Dial)
	defer rc.Close()
	for i := 0; i < 10; i++ {
		oldKey := resp.Key()
		if err := rc.Remap(ctx, resp); err != nil {
			t.Fatalf("remap %d: %v (stats %+v)", i, err, rc.Stats())
		}
		if resp.Key() == oldKey {
			t.Fatalf("remap %d: key not rotated", i)
		}
		ok, err := rc.Authenticate(ctx, resp)
		if err != nil || !ok {
			t.Fatalf("post-remap auth %d: ok=%v err=%v", i, ok, err)
		}
	}
}

// verdictEater lets one full transaction's requests through, then
// kills the connection just before the verdict arrives — after the
// client has revealed its challenge response.
type verdictEater struct {
	net.Conn
	writes int
	armed  bool
}

func (c *verdictEater) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.writes++
	if c.writes == 2 { // authenticate, then response: burn complete
		c.armed = true
	}
	return n, err
}

func (c *verdictEater) Read(p []byte) (int, error) {
	if c.armed {
		c.Conn.Close()
		return 0, fault.ErrInjectedDrop
	}
	return c.Conn.Read(p)
}

// responseRecorder captures every response message a client sends, so
// the test can prove no challenge is ever answered twice.
type responseRecorder struct {
	net.Conn
	ids *[]uint64
}

func (c *responseRecorder) Write(p []byte) (int, error) {
	for _, line := range bytes.Split(p, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var msg wireMsg
		if json.Unmarshal(line, &msg) == nil && msg.Type == "response" {
			*c.ids = append(*c.ids, msg.ChallengeID)
		}
	}
	return c.Conn.Write(p)
}

// TestResilientRetryIsFreshTransaction is the burned-challenge
// invariant end to end: the first attempt's verdict is lost AFTER the
// response was revealed, and the retry must answer a brand-new
// challenge rather than replaying the burned one.
func TestResilientRetryIsFreshTransaction(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	var answered []uint64
	dials := 0
	dial := func(ctx context.Context, addr string) (*WireClient, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		dials++
		rec := &responseRecorder{Conn: conn, ids: &answered}
		if dials == 1 {
			return NewWireClient(&verdictEater{Conn: rec}), nil
		}
		return NewWireClient(rec), nil
	}

	rc := NewResilientClient(addr, fastPolicy(), dial)
	defer rc.Close()
	ok, err := rc.Authenticate(ctx, resp)
	if err != nil {
		t.Fatalf("authenticate: %v", err)
	}
	if !ok {
		t.Fatal("genuine client rejected")
	}
	if len(answered) != 2 {
		t.Fatalf("client answered %d challenges, want 2 (burned + fresh): %v", len(answered), answered)
	}
	if answered[0] == answered[1] {
		t.Fatalf("retry replayed burned challenge %d; every attempt must answer a fresh challenge", answered[0])
	}
	if got := rc.Stats().Retries; got != 1 {
		t.Fatalf("stats.Retries = %d, want 1", got)
	}
}

func TestWireServerShedsAtMaxInFlight(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	ws, err := NewWireServerConfig(srv, WireConfig{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startWireFaulty(t, ws, fault.ConnPlan{})
	defer stop()

	// Occupy the only transaction slot directly.
	release := ws.acquire()
	if release == nil {
		t.Fatal("could not take the in-flight slot")
	}

	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	_, err = wc.Authenticate(ctx, resp)
	if CodeOf(err) != CodeUnavailable {
		t.Fatalf("saturated server answered %v, want CodeUnavailable", err)
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("shed error %v does not satisfy errors.Is(ErrUnavailable)", err)
	}
	if !Retryable(err) {
		t.Fatal("shed error must be retryable")
	}

	// A resilient client rides out the shedding window: the slot frees
	// while it is backing off.
	go func() {
		time.Sleep(10 * time.Millisecond)
		release()
	}()
	rc := NewResilientClient(addr, fastPolicy(), Dial)
	defer rc.Close()
	ok, err := rc.Authenticate(ctx, resp)
	if err != nil || !ok {
		t.Fatalf("resilient client under shedding: ok=%v err=%v (stats %+v)", ok, err, rc.Stats())
	}
	if rc.Stats().Unavailable == 0 {
		t.Fatal("resilient client never saw the shed window")
	}
}

func TestWireServerShedsAtMaxConns(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	ws, err := NewWireServerConfig(srv, WireConfig{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startWireFaulty(t, ws, fault.ConnPlan{})
	defer stop()

	first, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// A completed transaction guarantees the first connection is
	// registered before the second dial races the accept loop.
	if ok, err := first.Authenticate(ctx, resp); err != nil || !ok {
		t.Fatalf("first conn auth: ok=%v err=%v", ok, err)
	}

	second, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	_, err = second.Authenticate(ctx, resp)
	if CodeOf(err) != CodeUnavailable {
		t.Fatalf("over-cap connection answered %v, want CodeUnavailable", err)
	}
	if !Retryable(err) {
		t.Fatal("connection-cap error must be retryable")
	}
}

func TestWireConfigValidate(t *testing.T) {
	if err := (WireConfig{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	bad := []WireConfig{
		{MaxMessageBytes: -1},
		{MaxTransactionsPerConn: -1},
		{IdleTimeout: -time.Second},
		{MaxInFlight: -1},
		{MaxConns: -1},
	}
	for _, cfg := range bad {
		if _, err := NewWireServerConfig(nil, cfg); err == nil {
			t.Errorf("config %+v accepted, want validation error", cfg)
		} else if CodeOf(err) != CodeInvalidRequest {
			t.Errorf("config %+v rejected with %v, want CodeInvalidRequest", cfg, err)
		}
	}
}

func TestResilientExhaustionWrapsLastError(t *testing.T) {
	dial := func(ctx context.Context, addr string) (*WireClient, error) {
		return nil, syscall.ECONNREFUSED
	}
	rc := NewResilientClient("nowhere:0", RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Seed:        1,
	}, dial)
	_, err := rc.Authenticate(ctx, nil)
	if err == nil {
		t.Fatal("exhausted retries returned nil")
	}
	var ae *AuthError
	if !errors.As(err, &ae) || ae.Code != CodeUnavailable {
		t.Fatalf("exhaustion error %v is not a typed CodeUnavailable AuthError", err)
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("exhaustion error %v lost its cause chain", err)
	}
	if got := rc.Stats().Attempts; got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}
