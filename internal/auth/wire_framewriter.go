package auth

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// frameWriter serialises frames from many streams onto one connection
// through a single writer goroutine. The writer drains every queued
// frame before flushing, so pipelined transactions coalesce into
// shared syscalls — the mechanism behind v2's throughput win on a
// single connection. Both sides of the wire use it: the server's
// demultiplexer and the pipelining client.
type frameWriter struct {
	conn net.Conn
	bw   *bufio.Writer
	idle time.Duration
	// ch carries pooled frames to the writer goroutine; its buffer
	// plus the done arm in send keep stream goroutines from blocking
	// forever on a dead writer.
	ch chan *wire.Buf
	// done is closed exactly once (stop) to end the writer; waiters
	// across the package use it as their connection-lost signal.
	done     chan struct{}
	stopOnce sync.Once
	// failed flips after a write error; the connection is closed at
	// that point and later frames are silently discarded.
	failed atomic.Bool
	// exited is closed by the writer goroutine on return.
	exited chan struct{}
}

// newFrameWriter builds the writer; the caller starts it with
// `go fw.loop()` and ends it with fw.stop().
func newFrameWriter(conn net.Conn, idle time.Duration) *frameWriter {
	return &frameWriter{
		conn:   conn,
		bw:     bufio.NewWriterSize(conn, 32<<10),
		idle:   idle,
		ch:     make(chan *wire.Buf, 256),
		done:   make(chan struct{}),
		exited: make(chan struct{}),
	}
}

// send queues one frame for the writer. False means the writer is
// gone (stopped or failed); b has been returned to the pool either
// way once the writer is done with it.
func (fw *frameWriter) send(b *wire.Buf) bool {
	if fw.failed.Load() {
		wire.PutBuf(b)
		return false
	}
	select {
	case fw.ch <- b:
		return true
	case <-fw.done:
		wire.PutBuf(b)
		return false
	}
}

// stop ends the writer (idempotent) and waits for it to flush and
// exit.
func (fw *frameWriter) stop() {
	fw.stopOnce.Do(func() { close(fw.done) })
	<-fw.exited
}

// loop is the writer goroutine: write everything queued, flush only
// when the queue runs dry, exit on done.
func (fw *frameWriter) loop() {
	defer close(fw.exited)
	for {
		select {
		case b := <-fw.ch:
			fw.write(b)
			fw.drain()
			fw.flush()
		case <-fw.done:
			fw.drain()
			fw.flush()
			return
		}
	}
}

// drain writes every frame already queued without blocking.
func (fw *frameWriter) drain() {
	for {
		select {
		case b := <-fw.ch:
			fw.write(b)
		default:
			return
		}
	}
}

// write buffers one frame and returns it to the pool. A write error
// marks the writer failed and closes the connection, which unblocks
// the peer-facing reader too.
func (fw *frameWriter) write(b *wire.Buf) {
	if !fw.failed.Load() {
		fw.conn.SetWriteDeadline(time.Now().Add(fw.idle))
		if _, err := fw.bw.Write(b.B); err != nil {
			fw.failed.Store(true)
			fw.conn.Close()
		}
	}
	wire.PutBuf(b)
}

func (fw *frameWriter) flush() {
	if fw.failed.Load() {
		return
	}
	fw.conn.SetWriteDeadline(time.Now().Add(fw.idle))
	if err := fw.bw.Flush(); err != nil {
		fw.failed.Store(true)
		fw.conn.Close()
	}
}
