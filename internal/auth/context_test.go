package auth

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/crp"
)

// Every mutating Server method must fail fast with a typed
// CodeCanceled error once its context is dead, before touching any
// client state.
func TestServerMethodsHonourCancelledContext(t *testing.T) {
	m := testMap(t, 16384, 100, 31, 680, 700)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m, 700)
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	checks := map[string]func() error{
		"Enroll": func() error {
			_, err := srv.Enroll(dead, "other", m)
			return err
		},
		"IssueChallenge": func() error {
			_, err := srv.IssueChallenge(dead, "dev-1")
			return err
		},
		"IssueChallengeAt": func() error {
			_, err := srv.IssueChallengeAt(dead, "dev-1", 680)
			return err
		},
		"IssueChallengeMulti": func() error {
			_, err := srv.IssueChallengeMulti(dead, "dev-1")
			return err
		},
		"Verify": func() error {
			_, err := srv.Verify(dead, "dev-1", 0, crp.NewResponse(8))
			return err
		},
		"VerifySession": func() error {
			_, _, err := srv.VerifySession(dead, "dev-1", 0, crp.NewResponse(8))
			return err
		},
		"BeginRemap": func() error {
			_, err := srv.BeginRemap(dead, "dev-1")
			return err
		},
		"CompleteRemap": func() error {
			return srv.CompleteRemap(dead, "dev-1", true)
		},
	}
	for name, fn := range checks {
		err := fn()
		if err == nil {
			t.Errorf("%s: nil error under cancelled context", name)
			continue
		}
		var ae *AuthError
		if !errors.As(err, &ae) || ae.Code != CodeCanceled {
			t.Errorf("%s: error %v, want CodeCanceled AuthError", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: errors.Is(context.Canceled) = false", name)
		}
	}

	// The cancelled Verify must not have consumed a pending challenge:
	// issue one live, fail to verify it under a dead ctx, then verify
	// it for real.
	ch, err := srv.IssueChallenge(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Verify(dead, "dev-1", ch.ID, crp.NewResponse(len(ch.Bits))); err == nil {
		t.Fatal("verify under dead ctx succeeded")
	}
	if _, err := srv.Verify(ctx, "dev-1", ch.ID, crp.NewResponse(len(ch.Bits))); errors.Is(err, ErrUnknownChallenge) {
		t.Fatal("cancelled Verify consumed the pending challenge")
	}
}

// A WireClient transaction must abort promptly when its context is
// cancelled mid-RPC (server accepted but never answers).
func TestWireClientCancelsMidTransaction(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A black-hole server: reads the request, never replies.
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		_, _ = r.ReadString('\n')
		select {} // stall forever; test exit tears the goroutine down
	}()

	wc, err := Dial(ctx, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	tctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	m := testMap(t, 1024, 20, 32, 680)
	_, err = wc.Authenticate(tctx, NewResponder("dev-x", NewSimDevice(m), [32]byte{}))
	if err == nil {
		t.Fatal("authenticate against a stalled server succeeded")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancellation took %v, context ignored", waited)
	}
	var ae *AuthError
	if !errors.As(err, &ae) || ae.Code != CodeCanceled {
		t.Fatalf("error %v, want CodeCanceled AuthError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(DeadlineExceeded) = false for %v", err)
	}
}

// A pre-cancelled context must fail the transaction before any bytes
// hit the network.
func TestWireClientRejectsDeadContextUpFront(t *testing.T) {
	srv, resp := wireFixture(t, 680)
	addr, stop := startWire(t, srv)
	defer stop()
	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := wc.Authenticate(dead, resp); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled through the wrap", err)
	}
	// The connection must still be usable afterwards.
	ok, err := wc.Authenticate(ctx, resp)
	if err != nil || !ok {
		t.Fatalf("connection unusable after cancelled transaction: ok=%v err=%v", ok, err)
	}
}

// Serve must return promptly when its context is cancelled, without
// Close being called.
func TestServeStopsOnContextCancel(t *testing.T) {
	srv, _ := wireFixture(t, 680)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(srv)
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ws.Serve(sctx, l) }()
	time.Sleep(20 * time.Millisecond) // let Serve reach Accept
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on context cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
}
