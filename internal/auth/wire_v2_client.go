package auth

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/crp"
	"repro/internal/wire"
)

// clientV2 is the binary-framed, pipelining client engine behind a
// v2 WireClient: many transactions share one connection, each on its
// own stream. A reader goroutine routes incoming frames to
// per-stream channels; a frameWriter goroutine coalesces outgoing
// frames. Unlike the v1 client, concurrent callers are supported —
// that concurrency IS the pipelining.
type clientV2 struct {
	conn net.Conn
	fw   *frameWriter
	// readerExited is closed when the read loop returns.
	readerExited chan struct{}

	mu      sync.Mutex
	streams map[uint32]chan *wire.Buf
	nextID  uint32
	// rerr is the first read-loop failure; transactions report it as
	// their connection-lost cause.
	rerr error
}

// newClientV2 wraps an established connection, writes the v2
// preamble, and starts the reader and writer goroutines.
func newClientV2(conn net.Conn) (*clientV2, error) {
	pre := wire.Preamble()
	if _, err := conn.Write(pre[:]); err != nil {
		conn.Close()
		return nil, err
	}
	c := &clientV2{
		conn:         conn,
		fw:           newFrameWriter(conn, defaultWireIdleTimeout),
		readerExited: make(chan struct{}),
		streams:      make(map[uint32]chan *wire.Buf),
		nextID:       1,
	}
	go c.fw.loop()
	go c.readLoop()
	return c, nil
}

// close releases the connection and stops both goroutines.
func (c *clientV2) close() error {
	err := c.conn.Close()
	c.fw.stop()
	<-c.readerExited
	return err
}

// readLoop routes incoming frames to their streams until the
// connection dies. Frames for abandoned streams (a caller's context
// expired mid-transaction) are dropped; the connection stays usable.
func (c *clientV2) readLoop() {
	defer close(c.readerExited)
	br := bufio.NewReaderSize(c.conn, 32<<10)
	for {
		b := wire.GetBuf()
		if err := wire.ReadFrameInto(br, b, defaultMaxWireMessageBytes); err != nil {
			wire.PutBuf(b)
			c.readFailed(err)
			return
		}
		c.mu.Lock()
		ch := c.streams[b.Stream]
		c.mu.Unlock()
		if ch == nil {
			wire.PutBuf(b)
			continue
		}
		select {
		case ch <- b:
		default:
			// A server pushing more than the lock-step window on one
			// stream; drop rather than block the demultiplexer.
			wire.PutBuf(b)
		}
	}
}

// readFailed records the failure and wakes every waiting transaction
// through the writer's done channel.
func (c *clientV2) readFailed(err error) {
	c.mu.Lock()
	if c.rerr == nil {
		c.rerr = err
	}
	c.mu.Unlock()
	c.fw.stop()
}

// openStream allocates a stream id and its delivery channel.
func (c *clientV2) openStream() (uint32, chan *wire.Buf, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rerr != nil {
		return 0, nil, connLostErr(c.rerr)
	}
	id := c.nextID
	c.nextID++
	ch := make(chan *wire.Buf, 2)
	c.streams[id] = ch
	return id, ch, nil
}

// closeStream abandons a stream and drops any frame already routed
// to it.
func (c *clientV2) closeStream(id uint32) {
	c.mu.Lock()
	ch := c.streams[id]
	delete(c.streams, id)
	c.mu.Unlock()
	if ch == nil {
		return
	}
	for {
		select {
		case b := <-ch:
			wire.PutBuf(b)
		default:
			return
		}
	}
}

// recv waits for the next frame on a stream, honouring the caller's
// context and connection loss. On context expiry the stream is
// abandoned (the reader drops its late frames) and the connection
// stays healthy for other streams — the v2 analogue of v1's
// deadline-poisoned connection, minus the poisoning.
func (c *clientV2) recv(ctx context.Context, ch chan *wire.Buf) (*wire.Buf, error) {
	select {
	case b := <-ch:
		return b, nil
	default:
	}
	select {
	case b := <-ch:
		return b, nil
	case <-ctx.Done():
		return nil, &AuthError{Code: CodeCanceled, Err: ctx.Err()}
	case <-c.fw.done:
		return nil, c.connLost()
	}
}

// connLost reports the recorded reader failure as the v1 client
// would: a clean server close becomes a retryable unavailable with
// io.EOF in the chain (ResilientClient redials on it); any other
// transport fault is returned raw, exactly as the v1 recv path
// surfaces it.
func (c *clientV2) connLost() error {
	c.mu.Lock()
	err := c.rerr
	c.mu.Unlock()
	return connLostErr(err)
}

func connLostErr(err error) error {
	if err == nil || errors.Is(err, io.EOF) {
		return authErrf(CodeUnavailable, "", "%w: server closed connection: %w", ErrUnavailable, io.EOF)
	}
	return err
}

// frameErr converts an error frame into the same typed *AuthError
// the v1 client reconstructs.
func frameErr(b *wire.Buf) error {
	code, client, msg, derr := wire.DecodeError(b.B)
	if derr != nil {
		return authErrf(CodeInvalidRequest, "", "auth: bad error frame: %v", derr)
	}
	return errorFromWire(ErrorCode(code), ClientID(client), msg)
}

// authenticateSession runs one pipelined authentication transaction.
func (c *clientV2) authenticateSession(ctx context.Context, r *Responder) (bool, [32]byte, error) {
	var zero [32]byte
	if err := ctxErr(ctx, ""); err != nil {
		return false, zero, err
	}
	id, ch, err := c.openStream()
	if err != nil {
		return false, zero, err
	}
	defer c.closeStream(id)
	out := wire.GetBuf()
	out.B = wire.AppendClientID(out.B[:0], id, wire.OpAuthenticate, string(r.ID))
	if !c.fw.send(out) {
		return false, zero, c.connLost()
	}
	b, err := c.recv(ctx, ch)
	if err != nil {
		return false, zero, err
	}
	challenge, err := expectChallenge(b)
	if err != nil {
		return false, zero, err
	}
	resp, err := r.Respond(challenge)
	if err != nil {
		return false, zero, err
	}
	out = wire.GetBuf()
	out.B = wire.AppendResponse(out.B[:0], id, challenge.ID, &resp)
	if !c.fw.send(out) {
		return false, zero, c.connLost()
	}
	vb, err := c.recv(ctx, ch)
	if err != nil {
		return false, zero, err
	}
	v, err := expectVerdict(vb)
	if err != nil {
		return false, zero, err
	}
	if !v.Accepted {
		return false, zero, nil
	}
	sessionKey := r.SessionKey(challenge)
	if !v.HasConfirm || v.Confirm != confirmTagRaw(sessionKey) {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: session key confirmation mismatch")
	}
	if v.RemapAdvised {
		// Same policy as v1: rotate immediately on the server's
		// advice, on a fresh stream of this connection.
		if err := c.remap(ctx, r); err != nil {
			return true, sessionKey, fmt.Errorf("auth: advised remap failed: %w", err)
		}
	}
	return true, sessionKey, nil
}

// remap runs one pipelined key-update transaction.
func (c *clientV2) remap(ctx context.Context, r *Responder) error {
	id, ch, err := c.openStream()
	if err != nil {
		return err
	}
	defer c.closeStream(id)
	out := wire.GetBuf()
	out.B = wire.AppendClientID(out.B[:0], id, wire.OpRemap, string(r.ID))
	if !c.fw.send(out) {
		return c.connLost()
	}
	b, err := c.recv(ctx, ch)
	if err != nil {
		return err
	}
	req, err := expectRemapChallenge(b)
	if err != nil {
		return err
	}
	success := r.HandleRemap(req) == nil
	out = wire.GetBuf()
	out.B = wire.AppendRemapDone(out.B[:0], id, success)
	if !c.fw.send(out) {
		return c.connLost()
	}
	ack, err := c.recv(ctx, ch)
	if err != nil {
		return err
	}
	if err := expectRemapAck(ack); err != nil {
		return err
	}
	if !success {
		return authErrf(CodeInternal, "", "auth: client failed to derive the new key")
	}
	return nil
}

// expectChallenge decodes a challenge frame, passing error frames
// through as typed errors. It consumes b.
func expectChallenge(b *wire.Buf) (*crp.Challenge, error) {
	defer wire.PutBuf(b)
	switch b.Op {
	case wire.OpError:
		return nil, frameErr(b)
	case wire.OpChallenge:
		ch := new(crp.Challenge)
		if err := wire.DecodeChallenge(b.B, ch); err != nil {
			return nil, authErrf(CodeInvalidRequest, "", "auth: bad challenge payload: %v", err)
		}
		return ch, nil
	}
	return nil, authErrf(CodeInvalidRequest, "", "auth: expected challenge, got %q", b.Op)
}

// expectVerdict decodes a verdict frame; error semantics as
// expectChallenge. It consumes b.
func expectVerdict(b *wire.Buf) (wire.Verdict, error) {
	defer wire.PutBuf(b)
	switch b.Op {
	case wire.OpError:
		return wire.Verdict{}, frameErr(b)
	case wire.OpVerdict:
		v, err := wire.DecodeVerdict(b.B)
		if err != nil {
			return wire.Verdict{}, authErrf(CodeInvalidRequest, "", "auth: bad verdict payload: %v", err)
		}
		return v, nil
	}
	return wire.Verdict{}, authErrf(CodeInvalidRequest, "", "auth: expected verdict, got %q", b.Op)
}

// expectRemapChallenge decodes the JSON remap-challenge payload; it
// consumes b.
func expectRemapChallenge(b *wire.Buf) (*RemapRequest, error) {
	defer wire.PutBuf(b)
	switch b.Op {
	case wire.OpError:
		return nil, frameErr(b)
	case wire.OpRemapChallenge:
		req := new(RemapRequest)
		if err := json.Unmarshal(b.B, req); err != nil {
			return nil, authErrf(CodeInvalidRequest, "", "auth: bad remap challenge payload: %v", err)
		}
		return req, nil
	}
	return nil, authErrf(CodeInvalidRequest, "", "auth: expected remap_challenge, got %q", b.Op)
}

// expectRemapAck consumes b, accepting only a remap_ack frame.
func expectRemapAck(b *wire.Buf) error {
	defer wire.PutBuf(b)
	switch b.Op {
	case wire.OpError:
		return frameErr(b)
	case wire.OpRemapAck:
		return nil
	}
	return authErrf(CodeInvalidRequest, "", "auth: expected remap_ack, got %q", b.Op)
}
