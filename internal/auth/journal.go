package auth

import (
	"context"
	"sort"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/mapkey"
)

// Durability hooks. The server's in-memory mutations — enrollments,
// pair burns, key rotations, challenge-counter advances, deletions —
// can be journaled to a write-ahead log so that a crash between
// snapshots loses nothing the protocol already committed to. The
// critical invariant is the no-reuse registry: a burned pair the
// server forgets can be reissued, and the challenge an attacker
// recorded before the crash replays cleanly (the paper's Section 6.7
// model-building attack compounds the leak). The journal is therefore
// written at exactly the points the ClientStore's records mutate,
// inside the same per-record critical section, so the log's
// per-client order matches the in-memory mutation order.
//
// Failure semantics: the in-memory mutation is applied first, the
// journal written second, both under the record lock. If the journal
// write fails the operation returns CodeInternal and the in-memory
// state keeps the mutation — for burns that is the conservative
// direction (pairs die without a challenge ever leaving the server;
// nothing replayable exists), and for enrollments the record is
// backed out. The reverse order would risk a journaled mutation that
// never happened in memory, which replay would then invent.

// Journal receives a durable record of every enrollment-database
// mutation before the mutating call returns. Implementations must be
// safe for concurrent use and must not call back into the Server.
// *wal.WAL implements this interface.
type Journal interface {
	// JournalEnroll records a new client: its marshalled error map,
	// initial remap key, and reserved voltage planes.
	JournalEnroll(id string, mapBytes []byte, key [32]byte, reserved []int) error
	// JournalBurn records the physical pairs consumed by one issued
	// challenge, plus the challenge counter and per-key CRP budget
	// after the issue.
	JournalBurn(id string, pairs []crp.PairBit, nextID uint64, crpsSinceRemap int) error
	// JournalRemap records a committed key rotation.
	JournalRemap(id string, newKey [32]byte) error
	// JournalCounter records a counter advance that burns no pairs
	// (key-update challenges draw from reserved planes).
	JournalCounter(id string, nextID uint64) error
	// JournalDelete records a client removal.
	JournalDelete(id string) error
}

// AttachJournal installs the journal on a running server. Recovery
// attaches it only after snapshot load and log replay, so replayed
// mutations are not re-journaled. Not safe to call concurrently with
// traffic.
func (s *Server) AttachJournal(j Journal) { s.journal = j }

// DeleteClient removes an enrolled client, journaling the removal
// first-class (a deleted client's burned pairs die with it — its
// error map can never authenticate again, so the registry has nothing
// left to protect).
func (s *Server) DeleteClient(ctx context.Context, id ClientID) error {
	if err := ctxErr(ctx, id); err != nil {
		return err
	}
	if _, ok := s.store.Get(id); !ok {
		return authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	if s.journal != nil {
		if err := s.journal.JournalDelete(string(id)); err != nil {
			return unavailableErr(id, err)
		}
	}
	if !s.store.Delete(id) {
		return authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	return nil
}

// Replay appliers. Recovery loads the latest snapshot and then feeds
// the journal tail through these. Every applier is idempotent —
// compaction may leave the snapshot ahead of the earliest surviving
// log records, so a record can describe a mutation the snapshot
// already contains — and none of them re-journal.

// ReplayEnroll reinstates a journaled enrollment, last-wins. An
// enroll record for an existing client replaces it: a journal append
// can fail transiently while its frame still reaches the disk (fsync
// reported an error after the write), in which case the server backs
// the enrollment out and the caller re-enrolls — leaving two enroll
// records with different keys, of which only the later one was ever
// handed to a device. Overwriting is safe against snapshots too,
// because the journal's per-client order means every mutation newer
// than a replayed enroll record replays after it.
func (s *Server) ReplayEnroll(id ClientID, mapBytes []byte, key mapkey.Key, reserved []int) error {
	if id == "" {
		return authErrf(CodeInvalidRequest, id, "auth: replay enroll with empty id")
	}
	m, err := errormap.UnmarshalMap(mapBytes)
	if err != nil {
		return authErrf(CodeInvalidRequest, id, "auth: replay enroll %q: %v", id, err)
	}
	res := make(map[int]bool, len(reserved))
	for _, v := range reserved {
		if m.Plane(v) == nil {
			return authErrf(CodeBadPlane, id, "%w: replayed reserve of %d mV", ErrBadPlane, v)
		}
		res[v] = true
	}
	s.store.Delete(id)
	s.store.Create(id, newClientRecord(m, key, res))
	return nil
}

// ReplayBurn reinstates consumed pairs and the post-issue counters.
// Pairs already present in the registry are left marked (set union);
// the counters are plain assignments, correct because the journal
// preserves per-client mutation order.
func (s *Server) ReplayBurn(id ClientID, pairs []crp.PairBit, nextID uint64, crpsSinceRemap int) error {
	rec, ok := s.store.Get(id)
	if !ok {
		return authErrf(CodeUnknownClient, id, "%w: burn replayed for %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.registry.Mark(pairs)
	if nextID > rec.nextID {
		rec.nextID = nextID
	}
	rec.crpsSinceRemap = crpsSinceRemap
	return nil
}

// ReplayRemap reinstates a committed key rotation. Rotating to the
// key the record carries is idempotent: replaying it twice, or over a
// snapshot that already holds the new key, converges on the same key
// (the caches it invalidates rebuild lazily).
func (s *Server) ReplayRemap(id ClientID, key mapkey.Key) error {
	rec, ok := s.store.Get(id)
	if !ok {
		return authErrf(CodeUnknownClient, id, "%w: remap replayed for %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.rotateKeyLocked(key)
	return nil
}

// ReplayCounter reinstates a challenge-counter advance.
func (s *Server) ReplayCounter(id ClientID, nextID uint64) error {
	rec, ok := s.store.Get(id)
	if !ok {
		return authErrf(CodeUnknownClient, id, "%w: counter replayed for %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if nextID > rec.nextID {
		rec.nextID = nextID
	}
	return nil
}

// ReplayDelete reinstates a client removal; a client already absent
// (snapshot taken after the delete) is a no-op.
func (s *Server) ReplayDelete(id ClientID) error {
	s.store.Delete(id)
	return nil
}

// journalReserved flattens a reserved-plane set into the sorted slice
// the journal record carries.
func journalReserved(reserved map[int]bool) []int {
	if len(reserved) == 0 {
		return nil
	}
	out := make([]int, 0, len(reserved))
	for v := range reserved {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
