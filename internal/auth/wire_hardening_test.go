package auth

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"testing"
)

// An oversized message must get the connection dropped, not buffered.
func TestWireRejectsOversizedMessage(t *testing.T) {
	srv, _ := wireFixture(t, 680)
	addr, stop := startWire(t, srv)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// 2 MiB of valid JSON with no newline until the end.
	huge := `{"type":"authenticate","client_id":"` + strings.Repeat("A", 2<<20) + `"}` + "\n"
	if _, err := conn.Write([]byte(huge)); err != nil {
		// The server may already have hung up mid-write; that is the
		// desired outcome.
		return
	}
	// Any response must be a closed connection, not a challenge.
	var buf [512]byte
	n, _ := conn.Read(buf[:])
	if n > 0 && bytes.Contains(buf[:n], []byte(`"challenge"`)) {
		t.Fatal("oversized message was processed")
	}
}

// A message that is valid JSON but garbage after the first transaction
// must not take the server down for other clients.
func TestWireSurvivesAbusiveClient(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bad.Write([]byte("this is not json\n"))
	bad.Close()

	good, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	ok, err := good.Authenticate(ctx, resp)
	if err != nil || !ok {
		t.Fatalf("good client failed after abusive peer: ok=%v err=%v", ok, err)
	}
}

// The server must not crash on a response message missing its payload.
func TestWireNilResponsePayload(t *testing.T) {
	srv, _ := wireFixture(t, 680)
	addr, stop := startWire(t, srv)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(wireMsg{Type: "authenticate", ClientID: "tcp-dev"}); err != nil {
		t.Fatal(err)
	}
	var challenge wireMsg
	if err := dec.Decode(&challenge); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(wireMsg{Type: "response", ChallengeID: challenge.Challenge.ID}); err != nil {
		t.Fatal(err)
	}
	var reply wireMsg
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Type != "error" {
		t.Fatalf("expected error for nil payload, got %q", reply.Type)
	}
}

// msgReader must reassemble messages larger than its internal buffer
// (but under the cap).
func TestMsgReaderLargeButLegalMessage(t *testing.T) {
	srv, _ := wireFixture(t, 680)
	addr, stop := startWire(t, srv)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 100 KB client id: bigger than the 32 KB bufio buffer, smaller
	// than the 1 MB cap; the server must parse it and answer with a
	// clean protocol error (unknown client).
	id := strings.Repeat("x", 100<<10)
	msg := `{"type":"authenticate","client_id":"` + id + `"}` + "\n"
	if _, err := conn.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	var reply wireMsg
	if err := json.NewDecoder(conn).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Type != "error" || !strings.Contains(reply.Error, "unknown client") {
		t.Fatalf("reply = %+v", reply)
	}
}
