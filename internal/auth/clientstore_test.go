package auth

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/errormap"
	"repro/internal/mapkey"
	"repro/internal/rng"
)

// storeRecord builds a minimal valid record for store-contract tests.
func storeRecord(t *testing.T, seed uint64) *clientRecord {
	t.Helper()
	g := errormap.NewGeometry(256)
	m := errormap.NewMap(g)
	m.AddPlane(680, errormap.RandomPlane(g, 10, rng.New(seed)))
	return newClientRecord(m, mapkey.KeyFromBytes([]byte{byte(seed)}, "t"), nil)
}

// testClientStoreContract exercises the full ClientStore interface
// against an implementation; any future store (on-disk, remote) must
// pass it unchanged.
func testClientStoreContract(t *testing.T, mk func() ClientStore) {
	t.Run("get-missing", func(t *testing.T) {
		s := mk()
		if _, ok := s.Get("nope"); ok {
			t.Fatal("Get on empty store returned ok")
		}
	})
	t.Run("create-get-delete", func(t *testing.T) {
		s := mk()
		rec := storeRecord(t, 1)
		if !s.Create("a", rec) {
			t.Fatal("Create on fresh id returned false")
		}
		if s.Create("a", storeRecord(t, 2)) {
			t.Fatal("Create on duplicate id returned true")
		}
		got, ok := s.Get("a")
		if !ok || got != rec {
			t.Fatal("Get did not return the created record")
		}
		if !s.Delete("a") {
			t.Fatal("Delete on existing id returned false")
		}
		if s.Delete("a") {
			t.Fatal("Delete on missing id returned true")
		}
		if _, ok := s.Get("a"); ok {
			t.Fatal("record survives Delete")
		}
	})
	t.Run("len-ids-sorted", func(t *testing.T) {
		s := mk()
		want := []ClientID{"a-0", "b-1", "c-2", "d-3", "e-4"}
		// Insert out of order; IDs must come back sorted.
		for i := len(want) - 1; i >= 0; i-- {
			if !s.Create(want[i], storeRecord(t, uint64(i))) {
				t.Fatal("Create failed")
			}
		}
		if s.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(want))
		}
		got := s.IDs()
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("IDs not sorted: %v", got)
		}
		if len(got) != len(want) {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("IDs = %v, want %v", got, want)
			}
		}
	})
	t.Run("range-visits-all-and-stops", func(t *testing.T) {
		s := mk()
		const n = 20
		for i := 0; i < n; i++ {
			s.Create(ClientID(fmt.Sprintf("dev-%d", i)), storeRecord(t, uint64(i)))
		}
		seen := map[ClientID]bool{}
		s.Range(func(id ClientID, rec *clientRecord) bool {
			if rec == nil {
				t.Fatalf("Range handed nil record for %q", id)
			}
			if seen[id] {
				t.Fatalf("Range visited %q twice", id)
			}
			seen[id] = true
			return true
		})
		if len(seen) != n {
			t.Fatalf("Range visited %d records, want %d", len(seen), n)
		}
		calls := 0
		s.Range(func(ClientID, *clientRecord) bool {
			calls++
			return false
		})
		if calls != 1 {
			t.Fatalf("Range after fn returned false made %d calls, want 1", calls)
		}
	})
	t.Run("replace-all", func(t *testing.T) {
		s := mk()
		s.Create("old", storeRecord(t, 9))
		repl := map[ClientID]*clientRecord{
			"new-1": storeRecord(t, 10),
			"new-2": storeRecord(t, 11),
		}
		s.ReplaceAll(repl)
		if _, ok := s.Get("old"); ok {
			t.Fatal("ReplaceAll kept an old record")
		}
		for id, rec := range repl {
			got, ok := s.Get(id)
			if !ok || got != rec {
				t.Fatalf("ReplaceAll lost %q", id)
			}
		}
		if s.Len() != 2 {
			t.Fatalf("Len after ReplaceAll = %d, want 2", s.Len())
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		s := mk()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					id := ClientID(fmt.Sprintf("w%d-%d", w, i))
					if !s.Create(id, storeRecord(t, uint64(w*100+i))) {
						t.Errorf("concurrent Create(%q) failed", id)
						return
					}
					if _, ok := s.Get(id); !ok {
						t.Errorf("concurrent Get(%q) missed own write", id)
						return
					}
					s.Len()
				}
			}(w)
		}
		wg.Wait()
		if s.Len() != 8*50 {
			t.Fatalf("Len after concurrent creates = %d, want %d", s.Len(), 8*50)
		}
	})
}

func TestShardedStoreContract(t *testing.T) {
	for _, shards := range []int{1, 3, 32} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testClientStoreContract(t, func() ClientStore { return newShardedStore(shards) })
		})
	}
}

func TestShardedStoreDefaultShards(t *testing.T) {
	s := newShardedStore(0)
	if len(s.shards) != defaultStoreShards {
		t.Fatalf("shard count = %d, want default %d", len(s.shards), defaultStoreShards)
	}
	s = newShardedStore(-4)
	if len(s.shards) != defaultStoreShards {
		t.Fatalf("negative shard count not defaulted")
	}
}

// Records must land on a stable shard regardless of operation, and the
// population should spread across shards rather than clump.
func TestShardedStoreDistribution(t *testing.T) {
	s := newShardedStore(8)
	const n = 400
	for i := 0; i < n; i++ {
		s.Create(ClientID(fmt.Sprintf("device-%04d", i)), storeRecord(t, uint64(i)))
	}
	occupied := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		if len(s.shards[i].clients) > 0 {
			occupied++
		}
		s.shards[i].mu.RUnlock()
	}
	if occupied < len(s.shards)/2 {
		t.Fatalf("only %d/%d shards occupied by %d ids — hash is clumping", occupied, len(s.shards), n)
	}
}
