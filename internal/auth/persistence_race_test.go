package auth

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/crp"
)

// TestSaveLoadRoundTripUnderVerifyTraffic snapshots the server while
// verify traffic hammers it (meaningful under -race: SaveState locks
// records one at a time against concurrent mutators) and asserts the
// security invariant the snapshot exists for: every pair burned
// before the save began is still registered — and therefore rejected
// — after the snapshot is loaded into a fresh server.
func TestSaveLoadRoundTripUnderVerifyTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 32
	srv := NewServer(cfg, 7)

	const clients = 8
	ids := make([]ClientID, clients)
	for i := range ids {
		ids[i] = ClientID(fmt.Sprintf("dev-%d", i))
		m := testMap(t, 2048, 60, uint64(100+i), 680)
		if _, err := srv.Enroll(ctx, ids[i], m); err != nil {
			t.Fatal(err)
		}
	}

	// Burn a first round of pairs, then capture each client's
	// consumed set: this is "burned before the save".
	for _, id := range ids {
		for j := 0; j < 4; j++ {
			ch, err := srv.IssueChallenge(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := srv.Verify(ctx, id, ch.ID, crp.NewResponse(len(ch.Bits))); err != nil {
				t.Fatal(err)
			}
		}
	}
	preSave := make(map[ClientID][]crp.PairBit, clients)
	for _, id := range ids {
		rec, ok := srv.store.Get(id)
		if !ok {
			t.Fatalf("client %s vanished", id)
		}
		rec.mu.Lock()
		preSave[id] = rec.registry.Export()
		rec.mu.Unlock()
	}

	// Save concurrently with fresh traffic on every client.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id ClientID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, err := srv.IssueChallenge(ctx, id)
				if err != nil {
					if errors.Is(err, ErrExhausted) {
						return
					}
					t.Errorf("issue %s: %v", id, err)
					return
				}
				if _, err := srv.Verify(ctx, id, ch.ID, crp.NewResponse(len(ch.Bits))); err != nil {
					t.Errorf("verify %s: %v", id, err)
					return
				}
			}
		}(id)
	}
	var snapshot bytes.Buffer
	if err := srv.SaveState(&snapshot); err != nil {
		t.Fatalf("save under traffic: %v", err)
	}
	close(stop)
	wg.Wait()

	loaded := NewServer(cfg, 8)
	if err := loaded.LoadState(&snapshot); err != nil {
		t.Fatalf("load: %v", err)
	}
	for id, pairs := range preSave {
		rec, ok := loaded.store.Get(id)
		if !ok {
			t.Fatalf("client %s missing after load", id)
		}
		rec.mu.Lock()
		for _, p := range pairs {
			if !rec.registry.IsUsed(p) {
				rec.mu.Unlock()
				t.Fatalf("client %s: pair %+v burned before the save is reusable after the load", id, p)
			}
		}
		rec.mu.Unlock()
	}
}
