package auth

import (
	"encoding/json"
	"net"
	"sync"
	"testing"

	"repro/internal/errormap"
	"repro/internal/rng"
)

// startWire spins up a wire server on a random localhost port.
func startWire(t *testing.T, srv *Server) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(srv)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ws.Serve(ctx, l)
	}()
	return l.Addr().String(), func() {
		ws.Close()
		<-done
	}
}

func wireFixture(t *testing.T, vdds ...int) (*Server, *Responder) {
	t.Helper()
	g := errormap.NewGeometry(16384)
	m := errormap.NewMap(g)
	r := rng.New(77)
	for _, v := range vdds {
		m.AddPlane(v, errormap.RandomPlane(g, 100, r))
	}
	cfg := DefaultConfig()
	srv := NewServer(cfg, 7)
	var reserved []int
	for _, v := range vdds {
		if v == 700 {
			reserved = append(reserved, 700)
		}
	}
	key, err := srv.Enroll(ctx, "tcp-dev", m, reserved...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, NewResponder("tcp-dev", NewSimDevice(m), key)
}

func TestWireAuthenticateEndToEnd(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	for i := 0; i < 3; i++ {
		ok, err := wc.Authenticate(ctx, resp)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("genuine client rejected over TCP (round %d)", i)
		}
	}
}

func TestWireRemapEndToEnd(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	oldKey := resp.Key()
	if err := wc.Remap(ctx, resp); err != nil {
		t.Fatal(err)
	}
	if resp.Key() == oldKey {
		t.Fatal("key not rotated over TCP")
	}
	// Authentication still works under the rotated key.
	ok, err := wc.Authenticate(ctx, resp)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("post-remap TCP authentication failed")
	}
}

func TestWireUnknownClient(t *testing.T) {
	srv, _ := wireFixture(t, 680)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	ghost := NewResponder("ghost", NewSimDevice(errormap.NewMap(errormap.NewGeometry(64))), resp0Key())
	if _, err := wc.Authenticate(ctx, ghost); err == nil {
		t.Fatal("unknown client authenticated")
	}
}

func resp0Key() (k [32]byte) { return }

func TestWireConcurrentClients(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc, err := Dial(ctx, addr)
			if err != nil {
				errs <- err
				return
			}
			defer wc.Close()
			ok, err := wc.Authenticate(ctx, resp)
			if err != nil {
				errs <- err
				return
			}
			if !ok {
				errs <- errorsNew("rejected")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func errorsNew(s string) error { return &strErr{s} }

type strErr struct{ s string }

func (e *strErr) Error() string { return e.s }

func TestWireMalformedMessage(t *testing.T) {
	srv, _ := wireFixture(t, 680)
	addr, stop := startWire(t, srv)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(map[string]any{"type": "bogus"}); err != nil {
		t.Fatal(err)
	}
	var msg wireMsg
	if err := json.NewDecoder(conn).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if msg.Type != "error" {
		t.Fatalf("expected error message, got %q", msg.Type)
	}
}
