package auth

import (
	"context"

	"repro/internal/errormap"
	"repro/internal/mapkey"
)

// Enroll registers a client from its post-manufacturing error map
// characterisation and returns the initial remap key that must be
// provisioned into the device. reservedVdds marks voltage planes of
// the map held back for key-update transactions (Section 4.5); they
// are never used for ordinary challenges. Reserved levels are
// per-client because every chip calibrates its own voltage floor.
func (s *Server) Enroll(ctx context.Context, id ClientID, physMap *errormap.Map, reservedVdds ...int) (mapkey.Key, error) {
	if err := ctxErr(ctx, id); err != nil {
		return mapkey.Key{}, err
	}
	// Fast-path duplicate check before burning key material from the
	// deterministic stream; Create re-checks atomically below.
	if _, dup := s.store.Get(id); dup {
		return mapkey.Key{}, authErrf(CodeAlreadyEnrolled, id, "%w: %q", ErrAlreadyEnrolled, id)
	}
	if len(physMap.Voltages()) == 0 {
		return mapkey.Key{}, authErrf(CodeInvalidRequest, id, "auth: enrollment map has no voltage planes")
	}
	reserved := make(map[int]bool, len(reservedVdds))
	for _, v := range reservedVdds {
		if physMap.Plane(v) == nil {
			return mapkey.Key{}, authErrf(CodeBadPlane, id, "%w: reserved %d mV", ErrBadPlane, v)
		}
		reserved[v] = true
	}
	if len(reserved) == len(physMap.Voltages()) {
		return mapkey.Key{}, authErrf(CodeInvalidRequest, id, "auth: all planes reserved, none left for authentication")
	}
	var keyMaterial [40]byte
	s.randMu.Lock()
	for i := 0; i < len(keyMaterial); i += 8 {
		v := s.rand.Uint64()
		for j := 0; j < 8; j++ {
			keyMaterial[i+j] = byte(v >> (8 * j))
		}
	}
	s.randMu.Unlock()
	key := mapkey.KeyFromBytes(keyMaterial[:], "enroll/"+string(id))
	rec := newClientRecord(physMap.Clone(), key, reserved)
	if !s.store.Create(id, rec) {
		return mapkey.Key{}, authErrf(CodeAlreadyEnrolled, id, "%w: %q", ErrAlreadyEnrolled, id)
	}
	if s.journal != nil {
		mb, err := physMap.MarshalBinary()
		if err == nil {
			err = s.journal.JournalEnroll(string(id), mb, [32]byte(key), journalReserved(reserved))
		}
		if err != nil {
			// An enrollment that isn't durable must not hand out a key:
			// back the record out so the client can retry cleanly. The
			// failure is transient (journal pressure), so it surfaces
			// as unavailable — Retryable — rather than internal.
			s.store.Delete(id)
			return mapkey.Key{}, unavailableErr(id, err)
		}
	}
	return key, nil
}

// ClientIDs lists the enrolled clients in sorted order.
func (s *Server) ClientIDs() []ClientID {
	return s.store.IDs()
}

// Enrolled reports whether the client exists.
func (s *Server) Enrolled(id ClientID) bool {
	_, ok := s.store.Get(id)
	return ok
}

// CurrentKey exposes the client's current remap key; the enrollment
// flow uses it to provision the device, and tests use it to verify
// rotation.
func (s *Server) CurrentKey(id ClientID) (mapkey.Key, error) {
	rec, ok := s.store.Get(id)
	if !ok {
		return mapkey.Key{}, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	key := rec.key
	rec.mu.Unlock()
	return key, nil
}
