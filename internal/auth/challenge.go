package auth

import (
	"context"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/mapkey"
)

// authVoltagesLocked lists the client's planes usable for ordinary
// challenges. Callers hold rec.mu.
func authVoltagesLocked(rec *clientRecord) []int {
	var out []int
	for _, v := range rec.physMap.Voltages() {
		if !rec.reserved[v] {
			out = append(out, v)
		}
	}
	return out
}

// logicalFieldLocked returns (building and caching as needed) the distance
// field of the client's logical plane at the voltage under the current
// key. Callers hold rec.mu.
func logicalFieldLocked(id ClientID, rec *clientRecord, vddMV int) (*errormap.DistanceField, error) {
	if f, ok := rec.logicalFields[vddMV]; ok {
		return f, nil
	}
	phys := rec.physMap.Plane(vddMV)
	if phys == nil {
		return nil, authErrf(CodeBadPlane, id, "%w: %d mV", ErrBadPlane, vddMV)
	}
	logical := LogicalPlane(phys, rec.key, vddMV)
	f := logical.DistanceTransform()
	rec.logicalFields[vddMV] = f
	return f, nil
}

// IssueChallenge draws a fresh challenge for the client at a random
// non-reserved voltage plane, burning the underlying physical pairs in
// the no-reuse registry. The returned challenge uses logical
// coordinates and a server-assigned ID the client must echo.
func (s *Server) IssueChallenge(ctx context.Context, id ClientID) (*crp.Challenge, error) {
	if err := ctxErr(ctx, id); err != nil {
		return nil, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	vs := authVoltagesLocked(rec)
	if len(vs) == 0 {
		return nil, authErrf(CodeInvalidRequest, id, "auth: no non-reserved voltage planes enrolled")
	}
	vdd := vs[s.randIntn(len(vs))]
	return s.issueAtLocked(id, rec, vdd)
}

// IssueChallengeAt issues at a specific enrolled, non-reserved
// voltage.
func (s *Server) IssueChallengeAt(ctx context.Context, id ClientID, vddMV int) (*crp.Challenge, error) {
	if err := ctxErr(ctx, id); err != nil {
		return nil, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.reserved[vddMV] {
		return nil, authErrf(CodeInvalidRequest, id, "auth: %d mV is reserved for key updates", vddMV)
	}
	return s.issueAtLocked(id, rec, vddMV)
}

// IssueChallengeMulti issues a challenge whose bits are spread evenly
// across all of the client's non-reserved voltage planes — the paper's
// multi-Vdd extension (Section 4.3 leaves the optimisation to future
// work; the client minimises rail transitions by answering bits in
// descending-voltage order). More planes per challenge multiply the
// CRP space and force an attacker to model every plane at once.
func (s *Server) IssueChallengeMulti(ctx context.Context, id ClientID) (*crp.Challenge, error) {
	if err := ctxErr(ctx, id); err != nil {
		return nil, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	vs := authVoltagesLocked(rec)
	if len(vs) == 0 {
		return nil, authErrf(CodeInvalidRequest, id, "auth: no non-reserved voltage planes enrolled")
	}
	vdds := make([]int, s.cfg.ChallengeBits)
	for i := range vdds {
		vdds[i] = vs[i%len(vs)]
	}
	return s.issueWithVddsLocked(id, rec, vdds)
}

// issueAtLocked issues a single-voltage challenge. Callers hold rec.mu.
func (s *Server) issueAtLocked(id ClientID, rec *clientRecord, vddMV int) (*crp.Challenge, error) {
	vdds := make([]int, s.cfg.ChallengeBits)
	for i := range vdds {
		vdds[i] = vddMV
	}
	return s.issueWithVddsLocked(id, rec, vdds)
}

// issueWithVddsLocked generates one challenge whose bit i runs at vdds[i].
// Permutations and distance fields are resolved per distinct voltage
// from the record's key-scoped caches. Callers hold rec.mu.
func (s *Server) issueWithVddsLocked(id ClientID, rec *clientRecord, vdds []int) (*crp.Challenge, error) {
	g := rec.physMap.Geometry()
	fields := map[int]*errormap.DistanceField{}
	perms := map[int]*mapkey.Permutation{}
	for _, v := range vdds {
		if _, ok := fields[v]; ok {
			continue
		}
		field, err := logicalFieldLocked(id, rec, v)
		if err != nil {
			return nil, err
		}
		fields[v] = field
		perms[v] = rec.permLocked(v)
	}

	ch := &crp.Challenge{ID: rec.nextID, Bits: make([]crp.PairBit, len(vdds))}
	physBits := make([]crp.PairBit, len(vdds))
	// physKeys mirrors physBits as canonical fingerprints so the
	// within-challenge duplicate scan is a word compare, not a struct
	// compare — this loop is on the wire protocol's hot path.
	physKeys := make([]uint64, len(vdds))
	const maxRetries = 64
	for i := range ch.Bits {
		vdd := vdds[i]
		perm := perms[vdd]
		ok := false
		for attempt := 0; attempt < maxRetries; attempt++ {
			a, b := s.randIntn2(g.Lines)
			if a == b {
				continue
			}
			// The registry is canonical over *physical* pairs so that
			// key rotation cannot resurrect consumed challenges.
			pa, pb := perm.Unmap(a), perm.Unmap(b)
			phys := crp.PairBit{A: pa, B: pb, VddMV: vdd}
			if rec.registry.IsUsed(phys) {
				continue
			}
			key := pairFingerprint(phys)
			dup := false
			for j := 0; j < i; j++ {
				if physKeys[j] == key {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			ch.Bits[i] = crp.PairBit{A: a, B: b, VddMV: vdd}
			physBits[i] = phys
			physKeys[i] = key
			ok = true
			break
		}
		if !ok {
			return nil, authErr(CodeExhausted, id, ErrExhausted)
		}
	}
	if !rec.registry.Consume(&crp.Challenge{Bits: physBits}) {
		return nil, authErr(CodeExhausted, id, ErrExhausted)
	}
	if s.journal != nil {
		// Journal before the challenge can leave the server; the
		// append returns once the record is fsynced (group commit
		// amortises the sync across concurrent issues). On failure the
		// pairs stay burned in memory — the conservative direction:
		// no challenge was issued, so nothing replayable exists.
		err := s.journal.JournalBurn(string(id), physBits, rec.nextID+1, rec.crpsSinceRemap+len(ch.Bits))
		if err != nil {
			return nil, unavailableErr(id, err)
		}
	}

	// Precompute the expected response on the logical planes. A
	// last-voltage memo skips the map lookup on the common
	// single-voltage challenge.
	expected := crp.NewResponse(len(ch.Bits))
	var field *errormap.DistanceField
	lastVdd := -1
	for i, b := range ch.Bits {
		if b.VddMV != lastVdd {
			field = fields[b.VddMV]
			lastVdd = b.VddMV
		}
		da, fa := field.DistLine(b.A), field != nil
		db, fb := field.DistLine(b.B), field != nil
		expected.SetBit(i, crp.ResponseBit(da, fa, db, fb))
	}
	rec.pending[ch.ID] = pendingChallenge{ch: ch, expected: expected}
	rec.nextID++
	rec.crpsSinceRemap += len(ch.Bits)
	s.stats.issued.Add(1)
	return cloneChallenge(ch), nil
}

// NeedsRemap reports whether the client has consumed its CRP budget
// under the current key and should rotate (Section 6.7 mitigation).
func (s *Server) NeedsRemap(id ClientID) bool {
	rec, ok := s.store.Get(id)
	if !ok || s.cfg.RemapAfterCRPs <= 0 {
		return false
	}
	rec.mu.Lock()
	n := rec.crpsSinceRemap
	rec.mu.Unlock()
	return n >= s.cfg.RemapAfterCRPs
}
