package auth

import (
	"fmt"
	"sync"

	"repro/internal/crp"
	"repro/internal/ecc"
	"repro/internal/errormap"
	"repro/internal/firmware"
	"repro/internal/mapkey"
)

// Device abstracts the client-side PUF hardware. Two implementations
// ship with the repo: FirmwareDevice drives the full simulated SMM
// firmware stack (realistic, slow), SimDevice evaluates directly
// against a measured error map (fast, used by Monte Carlo runs).
type Device interface {
	// Geometry returns the logical error-map layout of the device's
	// cache.
	Geometry() errormap.Geometry
	// Respond answers a logical-coordinate challenge under the shared
	// remap key.
	Respond(ch *crp.Challenge, key mapkey.Key) (crp.Response, error)
	// RespondDefault answers a challenge under the default (identity)
	// mapping; only the key-update flow uses it.
	RespondDefault(ch *crp.Challenge) (crp.Response, error)
}

// Responder is the client-side protocol agent: it owns the device and
// the current remap key, answers challenges, and executes key updates.
type Responder struct {
	ID  ClientID
	dev Device
	key mapkey.Key
}

// NewResponder binds a device to its identity and provisioned key.
func NewResponder(id ClientID, dev Device, key mapkey.Key) *Responder {
	return &Responder{ID: id, dev: dev, key: key}
}

// Key returns the current remap key (tests use this to confirm
// rotation).
func (r *Responder) Key() mapkey.Key { return r.key }

// Respond answers an authentication challenge.
func (r *Responder) Respond(ch *crp.Challenge) (crp.Response, error) {
	return r.dev.Respond(ch, r.key)
}

// HandleRemap executes the client side of the key-update protocol
// (paper Figure 7): measure the response to the reserved-voltage
// challenge under the default mapping, reproduce the server's secret
// through the helper data, and derive the new key. The response never
// leaves the device.
func (r *Responder) HandleRemap(req *RemapRequest) error {
	resp, err := r.dev.RespondDefault(req.Challenge)
	if err != nil {
		return fmt.Errorf("auth: remap measurement failed: %w", err)
	}
	secret, err := ecc.Reproduce(resp.Bits, req.Helper)
	if err != nil {
		return fmt.Errorf("auth: helper data rejected: %w", err)
	}
	strengthened := ecc.StrengthenKey(secret, "remap")
	r.key = mapkey.KeyFromBytes(strengthened[:], "remap/"+string(r.ID))
	return nil
}

// --- Map-backed device -----------------------------------------------------

// SimDevice answers challenges directly from a measured error map. The
// map passed in represents what the silicon does *in the field* — for
// noise studies it differs from the enrolled map. It is safe for
// concurrent use: pipelined wire clients answer many challenges on
// one device at once.
type SimDevice struct {
	fieldMap *errormap.Map

	mu sync.Mutex
	// fieldCache caches logical distance fields per (key, vdd).
	fieldCache map[simCacheKey]*errormap.DistanceField
	// defaultCache caches identity-mapping fields per vdd.
	defaultCache map[int]*errormap.DistanceField
}

type simCacheKey struct {
	key mapkey.Key
	vdd int
}

// NewSimDevice wraps an as-measured error map.
func NewSimDevice(m *errormap.Map) *SimDevice {
	return &SimDevice{
		fieldMap:     m,
		fieldCache:   make(map[simCacheKey]*errormap.DistanceField),
		defaultCache: make(map[int]*errormap.DistanceField),
	}
}

// Geometry implements Device.
func (d *SimDevice) Geometry() errormap.Geometry { return d.fieldMap.Geometry() }

func (d *SimDevice) logicalField(key mapkey.Key, vdd int) (*errormap.DistanceField, error) {
	ck := simCacheKey{key: key, vdd: vdd}
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.fieldCache[ck]; ok {
		return f, nil
	}
	phys := d.fieldMap.Plane(vdd)
	if phys == nil {
		return nil, authErrf(CodeBadPlane, "", "%w: device has no plane at %d mV", ErrBadPlane, vdd)
	}
	f := LogicalPlane(phys, key, vdd).DistanceTransform()
	d.fieldCache[ck] = f
	return f, nil
}

// Respond implements Device. Consecutive bits at the same voltage
// reuse the resolved field without re-taking the cache lock — ordinary
// challenges are single-voltage, so the common case locks once.
func (d *SimDevice) Respond(ch *crp.Challenge, key mapkey.Key) (crp.Response, error) {
	resp := crp.NewResponse(len(ch.Bits))
	var f *errormap.DistanceField
	lastVdd := -1
	for i, b := range ch.Bits {
		if b.VddMV != lastVdd {
			var err error
			f, err = d.logicalField(key, b.VddMV)
			if err != nil {
				return crp.Response{}, err
			}
			lastVdd = b.VddMV
		}
		da, fa := nearDist(f, b.A)
		db, fb := nearDist(f, b.B)
		resp.SetBit(i, crp.ResponseBit(da, fa, db, fb))
	}
	return resp, nil
}

// RespondDefault implements Device.
func (d *SimDevice) RespondDefault(ch *crp.Challenge) (crp.Response, error) {
	resp := crp.NewResponse(len(ch.Bits))
	var f *errormap.DistanceField
	lastVdd := -1
	for i, b := range ch.Bits {
		if b.VddMV != lastVdd {
			var err error
			f, err = d.defaultField(b.VddMV)
			if err != nil {
				return crp.Response{}, err
			}
			lastVdd = b.VddMV
		}
		da, fa := nearDist(f, b.A)
		db, fb := nearDist(f, b.B)
		resp.SetBit(i, crp.ResponseBit(da, fa, db, fb))
	}
	return resp, nil
}

func (d *SimDevice) defaultField(vdd int) (*errormap.DistanceField, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.defaultCache[vdd]; ok {
		return f, nil
	}
	phys := d.fieldMap.Plane(vdd)
	if phys == nil {
		return nil, authErrf(CodeBadPlane, "", "%w: device has no plane at %d mV", ErrBadPlane, vdd)
	}
	f := phys.DistanceTransform()
	d.defaultCache[vdd] = f
	return f, nil
}

var _ Device = (*SimDevice)(nil)

// --- Firmware-backed device --------------------------------------------------

// FirmwareDevice drives the full simulated prototype stack: SMM entry,
// voltage control, targeted self-tests.
type FirmwareDevice struct {
	Client *firmware.Client
}

// Geometry implements Device.
func (d *FirmwareDevice) Geometry() errormap.Geometry { return d.Client.Geometry() }

// Respond implements Device.
func (d *FirmwareDevice) Respond(ch *crp.Challenge, key mapkey.Key) (crp.Response, error) {
	lines := d.Client.Geometry().Lines
	return d.Client.AuthenticateMapped(ch, func(vddMV int) firmware.Unmapper {
		perm := mapkey.NewPermutation(mapkey.PlaneKey(key, vddMV), lines)
		return perm.Unmap
	})
}

// RespondDefault implements Device.
func (d *FirmwareDevice) RespondDefault(ch *crp.Challenge) (crp.Response, error) {
	return d.Client.Authenticate(ch)
}

var _ Device = (*FirmwareDevice)(nil)
