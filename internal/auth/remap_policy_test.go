package auth

import "testing"

func TestNeedsRemapAfterBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 64
	cfg.RemapAfterCRPs = 200 // ~3 transactions
	m := testMap(t, 16384, 100, 51, 680, 700)
	srv, resp := enrolledPair(t, cfg, m, m, 700)

	if srv.NeedsRemap("dev-1") {
		t.Fatal("fresh client already advised to remap")
	}
	for i := 0; i < 4; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		answer, _ := resp.Respond(ch)
		if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); !ok {
			t.Fatal("genuine client rejected")
		}
	}
	if !srv.NeedsRemap("dev-1") {
		t.Fatal("256 issued CRP bits did not trigger the 200-bit budget")
	}

	// Rotating the key resets the budget.
	req, err := srv.BeginRemap(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.HandleRemap(req); err != nil {
		t.Fatal(err)
	}
	if err := srv.CompleteRemap(ctx, "dev-1", true); err != nil {
		t.Fatal(err)
	}
	if srv.NeedsRemap("dev-1") {
		t.Fatal("budget not reset after rotation")
	}
}

func TestNeedsRemapDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 64
	cfg.RemapAfterCRPs = 0
	m := testMap(t, 4096, 50, 52, 680)
	srv, _ := enrolledPair(t, cfg, m, m)
	for i := 0; i < 3; i++ {
		if _, err := srv.IssueChallenge(ctx, "dev-1"); err != nil {
			t.Fatal(err)
		}
	}
	if srv.NeedsRemap("dev-1") {
		t.Fatal("remap advised with the policy disabled")
	}
	if srv.NeedsRemap("ghost") {
		t.Fatal("remap advised for unknown client")
	}
}

// Over the wire: once the budget is spent, the client's next
// authentication transparently runs the key update; the key must
// rotate on both sides and authentication must keep working.
func TestWireAutoRemapOnAdvice(t *testing.T) {
	g := fixtureMap()
	cfg := DefaultConfig()
	cfg.ChallengeBits = 64
	cfg.RemapAfterCRPs = 100
	srv := NewServer(cfg, 7)
	key, err := srv.Enroll(ctx, "tcp-dev", g, 700)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewResponder("tcp-dev", NewSimDevice(g), key)

	addr, stop := startWire(t, srv)
	defer stop()
	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	oldKey := resp.Key()
	// First transaction spends 64 of 100; second crosses the budget
	// and must auto-rotate.
	for i := 0; i < 2; i++ {
		ok, err := wc.Authenticate(ctx, resp)
		if err != nil || !ok {
			t.Fatalf("round %d: ok=%v err=%v", i, ok, err)
		}
	}
	if resp.Key() == oldKey {
		t.Fatal("client key did not rotate on advice")
	}
	srvKey, _ := srv.CurrentKey("tcp-dev")
	if srvKey != resp.Key() {
		t.Fatal("keys diverged after auto-remap")
	}
	if srv.NeedsRemap("tcp-dev") {
		t.Fatal("advice still standing after rotation")
	}
	// And the rotated key authenticates.
	ok, err := wc.Authenticate(ctx, resp)
	if err != nil || !ok {
		t.Fatalf("post-rotation: ok=%v err=%v", ok, err)
	}
}
