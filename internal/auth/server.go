// Package auth implements the Authenticache authentication protocol
// (paper Sections 2.1, 4.3–4.5): the enrollment database and
// challenge-issuing server, the client-side responder, and transports
// (in-memory and TCP/JSON).
//
// The server never stores challenge-response pairs. It stores each
// client's *physical error map* — a few kilobytes — and generates
// challenges on demand (Section 4.2's storage argument). Challenges
// are expressed in a keyed *logical* coordinate space; the shared
// remap key hides the physical error layout from eavesdroppers and can
// be rotated in the field through the helper-data key-update protocol
// (Section 4.5).
package auth

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/crp"
	"repro/internal/ecc"
	"repro/internal/errormap"
	"repro/internal/mapkey"
	"repro/internal/rng"
	"repro/internal/stats"
)

// ClientID names an enrolled device.
type ClientID string

// Errors returned by the server.
var (
	ErrUnknownClient    = errors.New("auth: unknown client")
	ErrAlreadyEnrolled  = errors.New("auth: client already enrolled")
	ErrUnknownChallenge = errors.New("auth: unknown or expired challenge")
	ErrExhausted        = errors.New("auth: challenge space exhausted for this voltage")
	ErrNoRemapPending   = errors.New("auth: no remap in progress")
	ErrBadPlane         = errors.New("auth: voltage plane not enrolled")
)

// Config tunes the server.
type Config struct {
	// ChallengeBits is the CRP length issued by default.
	ChallengeBits int
	// PIntra and PInter parameterise the binomial identifiability
	// model used to place the acceptance threshold at the equal error
	// rate (paper Section 2.2.3). PIntra is the expected per-bit noise
	// flip probability for genuine clients; PInter the per-bit
	// agreement probability for impostors (~0.5).
	PIntra, PInter float64
	// RemapKeyBits is the secret length derived per key update.
	RemapKeyBits int
	// RemapAfterCRPs advises a key rotation once this many challenge
	// bits have been issued under the current key — the Section 6.7
	// model-building mitigation ("regenerate the logical map after a
	// predefined number of CRPs"). 0 disables the advice.
	RemapAfterCRPs int
}

// DefaultConfig mirrors the paper's operating point: 256-bit CRPs and
// a threshold model with ~6% intra-chip noise.
func DefaultConfig() Config {
	return Config{
		ChallengeBits: 256,
		PIntra:        0.10,
		PInter:        0.46,
		RemapKeyBits:  128,
		// The paper's win-rate attacker needs ~40K observed CRPs to
		// leave the 50% floor (Figure 16); rotate well before that.
		RemapAfterCRPs: 1 << 20,
	}
}

// pendingChallenge is an issued, not-yet-verified challenge.
type pendingChallenge struct {
	ch       *crp.Challenge
	expected crp.Response
}

// remapState tracks an in-flight key update.
type remapState struct {
	newKey mapkey.Key
}

// clientRecord is the per-client enrollment state.
type clientRecord struct {
	physMap  *errormap.Map
	key      mapkey.Key
	reserved map[int]bool
	registry *crp.Registry
	pending  map[uint64]pendingChallenge
	nextID   uint64
	remap    *remapState
	// crpsSinceRemap counts challenge bits issued under the current
	// key, driving the rotation advice.
	crpsSinceRemap int

	// logicalFields caches logical-plane distance fields per voltage;
	// invalidated on key rotation.
	logicalFields map[int]*errormap.DistanceField
}

// Server is the authenticating server.
type Server struct {
	mu      sync.Mutex
	cfg     Config
	rand    *rng.Rand
	clients map[ClientID]*clientRecord

	// stats
	issued, accepted, rejected int
}

// NewServer creates a server. seed drives challenge generation and
// key-update secrets; production deployments would use a CSPRNG, the
// simulator uses the deterministic stream for reproducibility.
func NewServer(cfg Config, seed uint64) *Server {
	if cfg.ChallengeBits <= 0 {
		panic("auth: config needs positive challenge length")
	}
	if cfg.RemapKeyBits <= 0 {
		cfg.RemapKeyBits = 128
	}
	return &Server{
		cfg:     cfg,
		rand:    rng.New(seed),
		clients: make(map[ClientID]*clientRecord),
	}
}

// Enroll registers a client from its post-manufacturing error map
// characterisation and returns the initial remap key that must be
// provisioned into the device. reservedVdds marks voltage planes of
// the map held back for key-update transactions (Section 4.5); they
// are never used for ordinary challenges. Reserved levels are
// per-client because every chip calibrates its own voltage floor.
func (s *Server) Enroll(id ClientID, physMap *errormap.Map, reservedVdds ...int) (mapkey.Key, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.clients[id]; dup {
		return mapkey.Key{}, fmt.Errorf("%w: %q", ErrAlreadyEnrolled, id)
	}
	if len(physMap.Voltages()) == 0 {
		return mapkey.Key{}, errors.New("auth: enrollment map has no voltage planes")
	}
	var keyMaterial [40]byte
	for i := 0; i < len(keyMaterial); i += 8 {
		v := s.rand.Uint64()
		for j := 0; j < 8; j++ {
			keyMaterial[i+j] = byte(v >> (8 * j))
		}
	}
	reserved := make(map[int]bool, len(reservedVdds))
	for _, v := range reservedVdds {
		if physMap.Plane(v) == nil {
			return mapkey.Key{}, fmt.Errorf("%w: reserved %d mV", ErrBadPlane, v)
		}
		reserved[v] = true
	}
	if len(reserved) == len(physMap.Voltages()) {
		return mapkey.Key{}, errors.New("auth: all planes reserved, none left for authentication")
	}
	key := mapkey.KeyFromBytes(keyMaterial[:], "enroll/"+string(id))
	s.clients[id] = &clientRecord{
		physMap:       physMap.Clone(),
		key:           key,
		reserved:      reserved,
		registry:      crp.NewRegistry(),
		pending:       make(map[uint64]pendingChallenge),
		logicalFields: make(map[int]*errormap.DistanceField),
	}
	return key, nil
}

// ClientIDs lists the enrolled clients in sorted order.
func (s *Server) ClientIDs() []ClientID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ClientID, 0, len(s.clients))
	for id := range s.clients {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Enrolled reports whether the client exists.
func (s *Server) Enrolled(id ClientID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.clients[id]
	return ok
}

// Stats reports issue/accept/reject counters.
func (s *Server) Stats() (issued, accepted, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.issued, s.accepted, s.rejected
}

// authVoltages lists the client's planes usable for ordinary
// challenges.
func (s *Server) authVoltages(rec *clientRecord) []int {
	var out []int
	for _, v := range rec.physMap.Voltages() {
		if !rec.reserved[v] {
			out = append(out, v)
		}
	}
	return out
}

// logicalField returns (building and caching as needed) the distance
// field of the client's logical plane at the voltage under the current
// key.
func (s *Server) logicalField(rec *clientRecord, vddMV int) (*errormap.DistanceField, error) {
	if f, ok := rec.logicalFields[vddMV]; ok {
		return f, nil
	}
	phys := rec.physMap.Plane(vddMV)
	if phys == nil {
		return nil, fmt.Errorf("%w: %d mV", ErrBadPlane, vddMV)
	}
	logical := LogicalPlane(phys, rec.key, vddMV)
	f := logical.DistanceTransform()
	rec.logicalFields[vddMV] = f
	return f, nil
}

// LogicalPlane permutes a physical error plane into the keyed logical
// layout used on the wire. Exported because the client device applies
// the inverse of the same permutation.
func LogicalPlane(phys *errormap.Plane, key mapkey.Key, vddMV int) *errormap.Plane {
	g := phys.Geometry()
	perm := mapkey.NewPermutation(mapkey.PlaneKey(key, vddMV), g.Lines)
	logical := errormap.NewPlane(g)
	for _, e := range phys.Errors() {
		logical.Set(perm.Map(e), true)
	}
	return logical
}

// IssueChallenge draws a fresh challenge for the client at a random
// non-reserved voltage plane, burning the underlying physical pairs in
// the no-reuse registry. The returned challenge uses logical
// coordinates and a server-assigned ID the client must echo.
func (s *Server) IssueChallenge(id ClientID) (*crp.Challenge, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.clients[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	vs := s.authVoltages(rec)
	if len(vs) == 0 {
		return nil, errors.New("auth: no non-reserved voltage planes enrolled")
	}
	vdd := vs[s.rand.Intn(len(vs))]
	return s.issueAt(rec, vdd)
}

// IssueChallengeAt issues at a specific enrolled, non-reserved
// voltage.
func (s *Server) IssueChallengeAt(id ClientID, vddMV int) (*crp.Challenge, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.clients[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	if rec.reserved[vddMV] {
		return nil, fmt.Errorf("auth: %d mV is reserved for key updates", vddMV)
	}
	return s.issueAt(rec, vddMV)
}

func (s *Server) issueAt(rec *clientRecord, vddMV int) (*crp.Challenge, error) {
	vdds := make([]int, s.cfg.ChallengeBits)
	for i := range vdds {
		vdds[i] = vddMV
	}
	return s.issueWithVdds(rec, vdds)
}

// issueWithVdds generates one challenge whose bit i runs at vdds[i].
// Permutations and distance fields are resolved per distinct voltage.
func (s *Server) issueWithVdds(rec *clientRecord, vdds []int) (*crp.Challenge, error) {
	g := rec.physMap.Geometry()
	fields := map[int]*errormap.DistanceField{}
	perms := map[int]*mapkey.Permutation{}
	for _, v := range vdds {
		if _, ok := fields[v]; ok {
			continue
		}
		field, err := s.logicalField(rec, v)
		if err != nil {
			return nil, err
		}
		fields[v] = field
		perms[v] = mapkey.NewPermutation(mapkey.PlaneKey(rec.key, v), g.Lines)
	}

	ch := &crp.Challenge{ID: rec.nextID, Bits: make([]crp.PairBit, len(vdds))}
	physBits := make([]crp.PairBit, len(vdds))
	const maxRetries = 64
	for i := range ch.Bits {
		vdd := vdds[i]
		perm := perms[vdd]
		ok := false
		for attempt := 0; attempt < maxRetries; attempt++ {
			a := s.rand.Intn(g.Lines)
			b := s.rand.Intn(g.Lines)
			if a == b {
				continue
			}
			// The registry is canonical over *physical* pairs so that
			// key rotation cannot resurrect consumed challenges.
			pa, pb := perm.Unmap(a), perm.Unmap(b)
			phys := crp.PairBit{A: pa, B: pb, VddMV: vdd}
			if rec.registry.IsUsed(phys) {
				continue
			}
			dup := false
			for j := 0; j < i; j++ {
				if samePair(physBits[j], phys) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			ch.Bits[i] = crp.PairBit{A: a, B: b, VddMV: vdd}
			physBits[i] = phys
			ok = true
			break
		}
		if !ok {
			return nil, ErrExhausted
		}
	}
	if !rec.registry.Consume(&crp.Challenge{Bits: physBits}) {
		return nil, ErrExhausted
	}

	// Precompute the expected response on the logical planes.
	expected := crp.NewResponse(len(ch.Bits))
	for i, b := range ch.Bits {
		field := fields[b.VddMV]
		da, fa := field.DistLine(b.A), field != nil
		db, fb := field.DistLine(b.B), field != nil
		expected.SetBit(i, crp.ResponseBit(da, fa, db, fb))
	}
	rec.pending[ch.ID] = pendingChallenge{ch: ch, expected: expected}
	rec.nextID++
	rec.crpsSinceRemap += len(ch.Bits)
	s.issued++
	return cloneChallenge(ch), nil
}

// NeedsRemap reports whether the client has consumed its CRP budget
// under the current key and should rotate (Section 6.7 mitigation).
func (s *Server) NeedsRemap(id ClientID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.clients[id]
	if !ok || s.cfg.RemapAfterCRPs <= 0 {
		return false
	}
	return rec.crpsSinceRemap >= s.cfg.RemapAfterCRPs
}

// IssueChallengeMulti issues a challenge whose bits are spread evenly
// across all of the client's non-reserved voltage planes — the paper's
// multi-Vdd extension (Section 4.3 leaves the optimisation to future
// work; the client minimises rail transitions by answering bits in
// descending-voltage order). More planes per challenge multiply the
// CRP space and force an attacker to model every plane at once.
func (s *Server) IssueChallengeMulti(id ClientID) (*crp.Challenge, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.clients[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	vs := s.authVoltages(rec)
	if len(vs) == 0 {
		return nil, errors.New("auth: no non-reserved voltage planes enrolled")
	}
	vdds := make([]int, s.cfg.ChallengeBits)
	for i := range vdds {
		vdds[i] = vs[i%len(vs)]
	}
	return s.issueWithVdds(rec, vdds)
}

func samePair(a, b crp.PairBit) bool {
	if a.VddMV != b.VddMV {
		return false
	}
	return (a.A == b.A && a.B == b.B) || (a.A == b.B && a.B == b.A)
}

func cloneChallenge(c *crp.Challenge) *crp.Challenge {
	out := &crp.Challenge{ID: c.ID, Bits: make([]crp.PairBit, len(c.Bits))}
	copy(out.Bits, c.Bits)
	return out
}

// Threshold returns the acceptance threshold (max tolerated differing
// bits) for an n-bit response under the configured binomial model.
func (s *Server) Threshold(n int) int {
	t, _, _ := stats.EqualErrorRate(n, s.cfg.PIntra, s.cfg.PInter)
	return t
}

// Verify checks a client's response against the pending challenge.
// The challenge is consumed either way — a failed attempt burns it,
// exactly like a wrong password attempt (and the no-reuse registry
// already holds its pairs).
func (s *Server) Verify(id ClientID, challengeID uint64, resp crp.Response) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.clients[id]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	pend, ok := rec.pending[challengeID]
	if !ok {
		return false, ErrUnknownChallenge
	}
	delete(rec.pending, challengeID)
	if resp.N != pend.expected.N {
		s.rejected++
		return false, fmt.Errorf("auth: response is %d bits, want %d", resp.N, pend.expected.N)
	}
	d := resp.HammingDistance(pend.expected)
	if d <= s.Threshold(resp.N) {
		s.accepted++
		return true, nil
	}
	s.rejected++
	return false, nil
}

// --- Adaptive error remapping (Section 4.5) -------------------------------

// RemapRequest is the server→client key-update transaction.
type RemapRequest struct {
	Challenge *crp.Challenge `json:"challenge"`
	Helper    ecc.HelperData `json:"helper"`
}

// BeginRemap starts a key update for the client using a reserved
// voltage plane. The challenge uses the *default* (identity) mapping,
// as the new key cannot be derived with a mapping that itself depends
// on it. The server computes the expected response, draws a fresh
// secret, and returns helper data that lets the client reproduce the
// secret despite response noise. The new key is held pending until
// CompleteRemap.
func (s *Server) BeginRemap(id ClientID) (*RemapRequest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.clients[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	var reserved []int
	for _, v := range rec.physMap.Voltages() {
		if rec.reserved[v] {
			reserved = append(reserved, v)
		}
	}
	if len(reserved) == 0 {
		return nil, errors.New("auth: client has no reserved voltage planes")
	}
	vdd := reserved[s.rand.Intn(len(reserved))]
	phys := rec.physMap.Plane(vdd)
	g := rec.physMap.Geometry()

	// Response bits needed: keyBits * repetition factor.
	respBits := s.cfg.RemapKeyBits * ecc.Repetition
	ch := crp.Generate(g, respBits, vdd, s.rand)
	ch.ID = rec.nextID
	rec.nextID++

	field := phys.DistanceTransform()
	expected := crp.NewResponse(len(ch.Bits))
	for i, b := range ch.Bits {
		da, fa := nearDist(field, b.A)
		db, fb := nearDist(field, b.B)
		expected.SetBit(i, crp.ResponseBit(da, fa, db, fb))
	}

	secret := make([]byte, (s.cfg.RemapKeyBits+7)/8)
	for i := range secret {
		secret[i] = byte(s.rand.Uint64())
	}
	helper, err := ecc.GenerateHelper(expected.Bits, s.cfg.RemapKeyBits, secret)
	if err != nil {
		return nil, err
	}
	strengthened := ecc.StrengthenKey(secret, "remap")
	rec.remap = &remapState{newKey: mapkey.KeyFromBytes(strengthened[:], "remap/"+string(id))}
	return &RemapRequest{Challenge: ch, Helper: helper}, nil
}

func nearDist(f *errormap.DistanceField, line int) (int, bool) {
	if f == nil {
		return 0, false
	}
	return f.DistLine(line), true
}

// CompleteRemap commits the pending key rotation after the client
// acknowledges success (the client never discloses the response
// itself). Logical-plane caches are invalidated.
func (s *Server) CompleteRemap(id ClientID, success bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.clients[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	if rec.remap == nil {
		return ErrNoRemapPending
	}
	if success {
		rec.key = rec.remap.newKey
		rec.logicalFields = make(map[int]*errormap.DistanceField)
		rec.crpsSinceRemap = 0
	}
	rec.remap = nil
	return nil
}

// CurrentKey exposes the client's current remap key; the enrollment
// flow uses it to provision the device, and tests use it to verify
// rotation.
func (s *Server) CurrentKey(id ClientID) (mapkey.Key, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.clients[id]
	if !ok {
		return mapkey.Key{}, fmt.Errorf("%w: %q", ErrUnknownClient, id)
	}
	return rec.key, nil
}
