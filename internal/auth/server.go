// Package auth implements the Authenticache authentication protocol
// (paper Sections 2.1, 4.3–4.5): the enrollment database and
// challenge-issuing server, the client-side responder, and transports
// (in-memory and TCP/JSON).
//
// The server never stores challenge-response pairs. It stores each
// client's *physical error map* — a few kilobytes — and generates
// challenges on demand (Section 4.2's storage argument). Challenges
// are expressed in a keyed *logical* coordinate space; the shared
// remap key hides the physical error layout from eavesdroppers and can
// be rotated in the field through the helper-data key-update protocol
// (Section 4.5).
//
// # Layering
//
// The package is split into focused modules:
//
//   - server.go      — Server core: config, construction, shared helpers
//   - clientstore.go — ClientStore interface and the sharded in-memory store
//   - enroll.go      — enrollment and client lookup
//   - challenge.go   — challenge generation (single-, fixed-, and multi-Vdd)
//   - verify.go      — response verification and thresholding
//   - remap.go       — the Section 4.5 key-update protocol
//   - stats.go       — race-safe service counters
//   - session.go     — session-key derivation on top of verification
//   - errors.go      — the typed *AuthError taxonomy and wire codes
//   - store.go       — enrollment-database persistence
//   - wire.go        — TCP/JSON transport (server and client)
//
// # Concurrency
//
// Clients are embarrassingly independent: per-client state never
// crosses records. The Server therefore keeps no global mutable lock;
// records live in a sharded ClientStore and carry their own locks, so
// challenge issue/verify for different clients proceed in parallel.
// Every public mutating method takes a context.Context and fails fast
// with a CodeCanceled *AuthError once the context is done.
package auth

import (
	"fmt"
	"sync"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/mapkey"
	"repro/internal/rng"
)

// ClientID names an enrolled device.
type ClientID string

// Config tunes the server.
type Config struct {
	// ChallengeBits is the CRP length issued by default.
	ChallengeBits int
	// PIntra and PInter parameterise the binomial identifiability
	// model used to place the acceptance threshold at the equal error
	// rate (paper Section 2.2.3). PIntra is the expected per-bit noise
	// flip probability for genuine clients; PInter the per-bit
	// agreement probability for impostors (~0.5).
	PIntra, PInter float64
	// RemapKeyBits is the secret length derived per key update.
	RemapKeyBits int
	// RemapAfterCRPs advises a key rotation once this many challenge
	// bits have been issued under the current key — the Section 6.7
	// model-building mitigation ("regenerate the logical map after a
	// predefined number of CRPs"). 0 disables the advice.
	RemapAfterCRPs int
	// StoreShards sets the shard count of the in-memory client store;
	// 0 uses the default. More shards reduce map-lock collisions for
	// very large fleets; per-client operations are independent at any
	// setting.
	StoreShards int
	// WAL, when non-nil, receives a durable journal record for every
	// mutation (enroll, pair burn, key rotation, counter advance,
	// delete) before the mutating call returns. Recovery flows attach
	// the journal after replay instead (Server.AttachJournal) so
	// replayed mutations are not re-journaled.
	WAL Journal
}

// DefaultConfig mirrors the paper's operating point: 256-bit CRPs and
// a threshold model with ~6% intra-chip noise.
func DefaultConfig() Config {
	return Config{
		ChallengeBits: 256,
		PIntra:        0.10,
		PInter:        0.46,
		RemapKeyBits:  128,
		// The paper's win-rate attacker needs ~40K observed CRPs to
		// leave the 50% floor (Figure 16); rotate well before that.
		RemapAfterCRPs: 1 << 20,
	}
}

// Server is the authenticating server: configuration, the client
// store, and the challenge-generation randomness source. All methods
// are safe for concurrent use.
type Server struct {
	cfg   Config
	store ClientStore

	// journal, when non-nil, is written inside the same per-record
	// critical section as each mutation (see journal.go).
	journal Journal

	// randMu guards rand: the deterministic stream is shared so that
	// single-threaded runs reproduce the seed exactly; draws are short
	// and never held across per-record work.
	randMu sync.Mutex
	rand   *rng.Rand

	// thresholds caches EqualErrorRate results per response length
	// (int → int); the binomial scan is O(n) with Lgamma per step and
	// would otherwise dominate Verify.
	thresholds sync.Map

	stats serverCounters
}

// NewServer creates a server. seed drives challenge generation and
// key-update secrets; production deployments would use a CSPRNG, the
// simulator uses the deterministic stream for reproducibility.
func NewServer(cfg Config, seed uint64) *Server {
	if cfg.ChallengeBits <= 0 {
		panic("auth: config needs positive challenge length")
	}
	if cfg.RemapKeyBits <= 0 {
		cfg.RemapKeyBits = 128
	}
	return &Server{
		cfg:     cfg,
		rand:    rng.New(seed),
		store:   newShardedStore(cfg.StoreShards),
		journal: cfg.WAL,
	}
}

// randIntn draws from the shared deterministic stream.
func (s *Server) randIntn(n int) int {
	s.randMu.Lock()
	v := s.rand.Intn(n)
	s.randMu.Unlock()
	return v
}

// randIntn2 draws two values under one lock acquisition, in the same
// stream order as two randIntn calls would (a first, then b), so the
// deterministic sequence is unchanged but the hot issue loop pays half
// the mutex traffic.
func (s *Server) randIntn2(n int) (a, b int) {
	s.randMu.Lock()
	a = s.rand.Intn(n)
	b = s.rand.Intn(n)
	s.randMu.Unlock()
	return a, b
}

// randUint64 draws from the shared deterministic stream.
func (s *Server) randUint64() uint64 {
	s.randMu.Lock()
	v := s.rand.Uint64()
	s.randMu.Unlock()
	return v
}

// SaltChallengeStream folds salt into the challenge-generation stream.
// Recovery and replication paths call it after rebuilding state: a
// server reseeded with the same value as its pre-crash self (or its
// primary) restarts the exact draw sequence that produced the pairs
// the registry already holds burned — every subsequent sample walks
// straight down the consumed prefix and issuance dies with a spurious
// CodeExhausted, even though the pair space is almost entirely free.
// Salting with a per-boot quantity (the WAL tail sequence, a node
// index) decorrelates the streams while staying deterministic for a
// given (seed, salt), so simulations remain reproducible.
func (s *Server) SaltChallengeStream(salt uint64) {
	s.randMu.Lock()
	s.rand = s.rand.SplitNamed(fmt.Sprintf("salt/%d", salt))
	s.randMu.Unlock()
}

// LogicalPlane permutes a physical error plane into the keyed logical
// layout used on the wire. Exported because the client device applies
// the inverse of the same permutation.
func LogicalPlane(phys *errormap.Plane, key mapkey.Key, vddMV int) *errormap.Plane {
	g := phys.Geometry()
	perm := mapkey.NewPermutation(mapkey.PlaneKey(key, vddMV), g.Lines)
	logical := errormap.NewPlane(g)
	for _, e := range phys.Errors() {
		logical.Set(perm.Map(e), true)
	}
	return logical
}

// pairFingerprint packs a pair bit into one comparable word with the
// line pair canonicalised (unordered), so two bits hitting the same
// physical pair at the same voltage collide regardless of A/B order.
// Line indexes fit in 24 bits (geometries are ≤2^24 lines) and rail
// voltages in 16, so the packing is collision-free in practice.
func pairFingerprint(p crp.PairBit) uint64 {
	lo, hi := p.A, p.B
	if lo > hi {
		lo, hi = hi, lo
	}
	return uint64(lo)<<40 | uint64(hi)<<16 | uint64(uint16(p.VddMV))
}

func cloneChallenge(c *crp.Challenge) *crp.Challenge {
	out := &crp.Challenge{ID: c.ID, Bits: make([]crp.PairBit, len(c.Bits))}
	copy(out.Bits, c.Bits)
	return out
}

func nearDist(f *errormap.DistanceField, line int) (int, bool) {
	if f == nil {
		return 0, false
	}
	return f.DistLine(line), true
}
