package auth

import (
	"context"
	"testing"
	"time"
)

func TestDeadlineBudgetCarveSplitsRemaining(t *testing.T) {
	b := DeadlineBudget{}.WithBudgetDefaults()
	parent, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	attempt, acancel := b.Carve(parent, 3)
	defer acancel()
	dl, ok := attempt.Deadline()
	if !ok {
		t.Fatal("carved context has no deadline")
	}
	left := time.Until(dl)
	if left > 1100*time.Millisecond || left < 700*time.Millisecond {
		t.Fatalf("3s split across 3 attempts gave %v, want ~1s", left)
	}
}

func TestDeadlineBudgetCarveFloor(t *testing.T) {
	// 1s across 50 attempts is a 20ms share; the 200ms floor lifts it.
	b := DeadlineBudget{Attempts: 50, Floor: 200 * time.Millisecond, Default: time.Second}
	parent, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	attempt, acancel := b.Carve(parent, 50)
	defer acancel()
	dl, ok := attempt.Deadline()
	if !ok {
		t.Fatal("carved context has no deadline")
	}
	if left := time.Until(dl); left < 120*time.Millisecond {
		t.Fatalf("floor not applied: attempt got %v, floor is 200ms", left)
	}
}

func TestDeadlineBudgetCarveCappedByParent(t *testing.T) {
	// An exhausted budget cannot be extended by the floor: the attempt
	// expires with the caller.
	b := DeadlineBudget{Attempts: 3, Floor: 500 * time.Millisecond, Default: time.Second}
	parent, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	attempt, acancel := b.Carve(parent, 3)
	defer acancel()
	dl, ok := attempt.Deadline()
	if !ok {
		t.Fatal("carved context has no deadline")
	}
	if left := time.Until(dl); left > 100*time.Millisecond {
		t.Fatalf("attempt outlives the caller's deadline: %v", left)
	}
}

func TestDeadlineBudgetCarveDefault(t *testing.T) {
	b := DeadlineBudget{Attempts: 3, Floor: 50 * time.Millisecond, Default: 500 * time.Millisecond}
	attempt, acancel := b.Carve(context.Background(), 3)
	defer acancel()
	dl, ok := attempt.Deadline()
	if !ok {
		t.Fatal("deadline-free caller must still get a per-attempt deadline")
	}
	if left := time.Until(dl); left > 600*time.Millisecond {
		t.Fatalf("default allowance exceeded: %v", left)
	}
}

func TestDeadlineBudgetCarveClampsAttempts(t *testing.T) {
	b := DeadlineBudget{}.WithBudgetDefaults()
	parent, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	attempt, acancel := b.Carve(parent, 0)
	defer acancel()
	dl, ok := attempt.Deadline()
	if !ok {
		t.Fatal("carved context has no deadline")
	}
	if left := time.Until(dl); left < 700*time.Millisecond {
		t.Fatalf("attemptsLeft=0 should clamp to 1 (full remaining), got %v", left)
	}
}
