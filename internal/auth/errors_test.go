package auth

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/crp"
)

// Every code↔sentinel pairing the protocol defines.
var codeTable = []struct {
	code     ErrorCode
	sentinel error // nil for codes without a sentinel
}{
	{CodeUnknownClient, ErrUnknownClient},
	{CodeAlreadyEnrolled, ErrAlreadyEnrolled},
	{CodeUnknownChallenge, ErrUnknownChallenge},
	{CodeExhausted, ErrExhausted},
	{CodeNoRemapPending, ErrNoRemapPending},
	{CodeBadPlane, ErrBadPlane},
	{CodeInvalidRequest, nil},
	{CodeCanceled, nil},
	{CodeInternal, nil},
	{CodeUnavailable, ErrUnavailable},
}

func TestAuthErrorUnwrapsToSentinel(t *testing.T) {
	err := authErrf(CodeUnknownClient, "dev-9", "%w: %q", ErrUnknownClient, "dev-9")
	if !errors.Is(err, ErrUnknownClient) {
		t.Fatal("AuthError does not unwrap to its sentinel")
	}
	var ae *AuthError
	if !errors.As(err, &ae) {
		t.Fatal("errors.As failed")
	}
	if ae.Code != CodeUnknownClient || ae.ClientID != "dev-9" {
		t.Fatalf("fields = %q/%q", ae.Code, ae.ClientID)
	}
	if !strings.Contains(err.Error(), "code=unknown_client") || !strings.Contains(err.Error(), "client=dev-9") {
		t.Fatalf("Error() = %q, missing structured fields", err.Error())
	}
}

func TestCodeOf(t *testing.T) {
	for _, tc := range codeTable {
		if tc.sentinel == nil {
			continue
		}
		if got := CodeOf(authErr(tc.code, "x", tc.sentinel)); got != tc.code {
			t.Errorf("CodeOf(AuthError{%s}) = %s", tc.code, got)
		}
		// Bare sentinels (pre-taxonomy callers) classify too.
		if got := CodeOf(fmt.Errorf("wrap: %w", tc.sentinel)); got != tc.code {
			t.Errorf("CodeOf(bare %s) = %s", tc.code, got)
		}
	}
	if got := CodeOf(context.Canceled); got != CodeCanceled {
		t.Errorf("CodeOf(context.Canceled) = %s", got)
	}
	if got := CodeOf(errors.New("mystery")); got != CodeInternal {
		t.Errorf("CodeOf(unknown) = %s", got)
	}
}

// Every error code must survive the encode→JSON→decode→reconstruct
// path with the same code, client, and errors.Is behaviour.
func TestErrorCodesSurviveWireRoundTrip(t *testing.T) {
	for _, tc := range codeTable {
		t.Run(string(tc.code), func(t *testing.T) {
			cause := tc.sentinel
			if cause == nil {
				cause = errors.New("detail text")
			}
			orig := authErrf(tc.code, "dev-7", "%w: extra", cause)

			// Server side: sendErr onto a buffer.
			var buf bytes.Buffer
			sendErr(json.NewEncoder(&buf), orig)

			// Client side: decode and reconstruct.
			var msg wireMsg
			if err := json.NewDecoder(&buf).Decode(&msg); err != nil {
				t.Fatal(err)
			}
			if msg.Type != "error" {
				t.Fatalf("type = %q", msg.Type)
			}
			if msg.ErrorCode != string(tc.code) {
				t.Fatalf("error_code = %q, want %q", msg.ErrorCode, tc.code)
			}
			if msg.ErrorClient != "dev-7" {
				t.Fatalf("error_client = %q", msg.ErrorClient)
			}
			rebuilt := errorFromWire(ErrorCode(msg.ErrorCode), ClientID(msg.ErrorClient), msg.Error)

			var ae *AuthError
			if !errors.As(rebuilt, &ae) {
				t.Fatal("reconstructed error is not *AuthError")
			}
			if ae.Code != tc.code || ae.ClientID != "dev-7" {
				t.Fatalf("reconstructed fields = %q/%q", ae.Code, ae.ClientID)
			}
			if tc.sentinel != nil && !errors.Is(rebuilt, tc.sentinel) {
				t.Fatalf("errors.Is(%s sentinel) lost across the wire", tc.code)
			}
			if !strings.Contains(rebuilt.Error(), "extra") {
				t.Fatalf("server message lost: %q", rebuilt.Error())
			}
		})
	}
}

func TestErrorFromWireLegacyFallback(t *testing.T) {
	err := errorFromWire("", "", "old-school failure")
	var ae *AuthError
	if errors.As(err, &ae) {
		t.Fatal("codeless message should not become a typed AuthError")
	}
	if !strings.Contains(err.Error(), "old-school failure") {
		t.Fatalf("message lost: %q", err.Error())
	}
}

// A live TCP server must hand WireClient errors that satisfy the same
// errors.Is checks as in-process Server calls — the tentpole's wire
// guarantee.
func TestWireClientGetsTypedErrors(t *testing.T) {
	srv, _ := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	t.Run("unknown-client", func(t *testing.T) {
		wc, err := Dial(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		ghost := NewResponder("ghost", NewSimDevice(nil), [32]byte{})
		_, err = wc.Authenticate(ctx, ghost)
		if !errors.Is(err, ErrUnknownClient) {
			t.Fatalf("errors.Is(ErrUnknownClient) = false for %v", err)
		}
		var ae *AuthError
		if !errors.As(err, &ae) || ae.Code != CodeUnknownClient || ae.ClientID != "ghost" {
			t.Fatalf("wire error not reconstructed: %#v", err)
		}
	})

	t.Run("unknown-challenge", func(t *testing.T) {
		// Speak raw protocol: answer a never-issued challenge id.
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		enc := json.NewEncoder(conn)
		dec := json.NewDecoder(conn)
		if err := enc.Encode(wireMsg{Type: "authenticate", ClientID: "tcp-dev"}); err != nil {
			t.Fatal(err)
		}
		var chMsg wireMsg
		if err := dec.Decode(&chMsg); err != nil {
			t.Fatal(err)
		}
		resp := crp.NewResponse(len(chMsg.Challenge.Bits))
		if err := enc.Encode(wireMsg{Type: "response", ChallengeID: chMsg.Challenge.ID + 999, Response: &resp}); err != nil {
			t.Fatal(err)
		}
		var errMsg wireMsg
		if err := dec.Decode(&errMsg); err != nil {
			t.Fatal(err)
		}
		if errMsg.Type != "error" || errMsg.ErrorCode != string(CodeUnknownChallenge) {
			t.Fatalf("got %+v, want unknown_challenge error", errMsg)
		}
		rebuilt := errorFromWire(ErrorCode(errMsg.ErrorCode), ClientID(errMsg.ErrorClient), errMsg.Error)
		if !errors.Is(rebuilt, ErrUnknownChallenge) {
			t.Fatalf("errors.Is(ErrUnknownChallenge) = false for %v", rebuilt)
		}
	})

	t.Run("remap-without-reserved-plane", func(t *testing.T) {
		// Enroll a client with no reserved plane, then ask it to remap.
		srv2, resp2 := wireFixture2(t)
		addr2, stop2 := startWire(t, srv2)
		defer stop2()
		wc, err := Dial(ctx, addr2)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		err = wc.Remap(ctx, resp2)
		var ae *AuthError
		if !errors.As(err, &ae) || ae.Code != CodeInvalidRequest {
			t.Fatalf("remap on reserved-less client: %v", err)
		}
	})
}

// wireFixture2 enrolls a client with no reserved planes.
func wireFixture2(t *testing.T) (*Server, *Responder) {
	t.Helper()
	srv, resp := wireFixture(t, 680)
	return srv, resp
}

// The typed error must match what the in-memory path produces, field
// for field, so callers can switch transports without changing error
// handling.
func TestWireErrorMatchesInMemoryError(t *testing.T) {
	srv, _ := wireFixture(t, 680, 700)
	_, localErr := srv.IssueChallenge(ctx, "ghost")

	addr, stop := startWire(t, srv)
	defer stop()
	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	_, wireErr := wc.Authenticate(ctx, NewResponder("ghost", NewSimDevice(nil), [32]byte{}))

	var localAE, wireAE *AuthError
	if !errors.As(localErr, &localAE) || !errors.As(wireErr, &wireAE) {
		t.Fatalf("not AuthErrors: local=%v wire=%v", localErr, wireErr)
	}
	if localAE.Code != wireAE.Code || localAE.ClientID != wireAE.ClientID {
		t.Fatalf("mismatch: local=%s/%s wire=%s/%s", localAE.Code, localAE.ClientID, wireAE.Code, wireAE.ClientID)
	}
	if errors.Is(localErr, ErrUnknownClient) != errors.Is(wireErr, ErrUnknownClient) {
		t.Fatal("errors.Is differs between transports")
	}
}

// Ensure AuthError does not accidentally satisfy errors.Is against a
// different sentinel.
func TestAuthErrorNoCrossMatch(t *testing.T) {
	err := authErr(CodeExhausted, "d", ErrExhausted)
	if errors.Is(err, ErrUnknownClient) {
		t.Fatal("exhausted error matches ErrUnknownClient")
	}
}
