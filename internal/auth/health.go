package auth

import (
	"context"
	"time"

	"repro/internal/wire"
)

// Health probing: the failure-detection half of the cluster's
// resilience control plane lives behind two small seams here. On the
// serving side, a backend that can describe its replication state
// implements HealthReporter and the v2 demultiplexer answers probe
// frames from it inline. On the probing side, RelayClient.Probe runs
// one probe/health exchange on the pooled relay connection — so a
// probe doubles as a liveness check of the exact connection forwarded
// transactions will use.

// PeerHealth is a node's replication health as reported to a probe,
// transport-neutral (the wire.Health frame carries the same fields).
type PeerHealth struct {
	// Primary reports whether the node currently holds the primary
	// role.
	Primary bool
	// Term is the node's current primary term.
	Term uint64
	// CommitSeq is the highest committed sequence the node knows of:
	// its own on a primary, the primary's last advertised commit on a
	// follower.
	CommitSeq uint64
	// AppliedSeq is the last sequence applied to the local replica.
	AppliedSeq uint64
}

// Staleness is how many records the node's replica trails the commit
// frontier it knows of.
func (h PeerHealth) Staleness() uint64 {
	if h.CommitSeq > h.AppliedSeq {
		return h.CommitSeq - h.AppliedSeq
	}
	return 0
}

// HealthReporter is the optional TxBackend extension a wire server
// answers probes from. A backend without it — the plain single-node
// localBackend — is reported as a primary at term 0 with zero
// sequences: always fresh, because there is no replica to trail.
type HealthReporter interface {
	Health() PeerHealth
}

// healthReport answers one probe from the server's backend.
func (ws *WireServer) healthReport() wire.Health {
	hr, ok := ws.backend.(HealthReporter)
	if !ok {
		return wire.Health{Role: wire.HealthRolePrimary}
	}
	h := hr.Health()
	role := wire.HealthRoleFollower
	if h.Primary {
		role = wire.HealthRolePrimary
	}
	return wire.Health{
		Role:       role,
		Term:       h.Term,
		CommitSeq:  h.CommitSeq,
		AppliedSeq: h.AppliedSeq,
	}
}

// Probe runs one probe/health exchange and reports the peer's health
// plus the measured round trip. It rides the relay's pooled
// connection on its own stream, so the RTT covers the same socket
// forwarded transactions use, and a hung or dead peer fails the probe
// exactly as it would fail a forward. ctx bounds the wait.
func (rc *RelayClient) Probe(ctx context.Context) (PeerHealth, time.Duration, error) {
	if err := ctxErr(ctx, ""); err != nil {
		return PeerHealth{}, 0, err
	}
	stream, ch, err := rc.c2.openStream()
	if err != nil {
		return PeerHealth{}, 0, err
	}
	defer rc.c2.closeStream(stream)
	start := time.Now()
	out := wire.GetBuf()
	out.B = wire.AppendProbe(out.B[:0], stream)
	if !rc.c2.fw.send(out) {
		return PeerHealth{}, 0, rc.c2.connLost()
	}
	b, err := rc.c2.recv(ctx, ch)
	if err != nil {
		return PeerHealth{}, 0, err
	}
	h, err := expectHealth(b)
	if err != nil {
		return PeerHealth{}, 0, err
	}
	return h, time.Since(start), nil
}

// expectHealth decodes a health frame, passing error frames through
// as typed errors. It consumes b.
func expectHealth(b *wire.Buf) (PeerHealth, error) {
	defer wire.PutBuf(b)
	switch b.Op {
	case wire.OpError:
		return PeerHealth{}, frameErr(b)
	case wire.OpHealth:
		h, err := wire.DecodeHealth(b.B)
		if err != nil {
			return PeerHealth{}, authErrf(CodeInvalidRequest, "", "auth: bad health payload: %v", err)
		}
		return PeerHealth{
			Primary:    h.Role == wire.HealthRolePrimary,
			Term:       h.Term,
			CommitSeq:  h.CommitSeq,
			AppliedSeq: h.AppliedSeq,
		}, nil
	}
	return PeerHealth{}, authErrf(CodeInvalidRequest, "", "auth: expected health, got %q", b.Op)
}
