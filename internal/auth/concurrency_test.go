package auth

import (
	"sync"
	"testing"
)

// The server is shared mutable state behind one mutex; hammer it from
// many goroutines mixing every operation to flush out races and
// lock-ordering bugs (run with -race).
func TestServerConcurrentOperations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 32
	m := testMap(t, 16384, 100, 61, 680, 700)
	srv := NewServer(cfg, 9)
	key, err := srv.Enroll(ctx, "dev-c", m, 700)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const opsEach = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*opsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns its responder (responders are not
			// concurrent-safe; the server is the shared object).
			resp := NewResponder("dev-c", NewSimDevice(m), key)
			for i := 0; i < opsEach; i++ {
				switch i % 4 {
				case 0, 1, 2:
					ch, err := srv.IssueChallenge(ctx, "dev-c")
					if err != nil {
						errs <- err
						continue
					}
					answer, err := resp.Respond(ch)
					if err != nil {
						errs <- err
						continue
					}
					if ok, err := srv.Verify(ctx, "dev-c", ch.ID, answer); err != nil {
						errs <- err
					} else if !ok {
						// A rejection is only legal here when the key
						// rotated mid-flight; no rotation happens in
						// this test, so rejections are bugs.
						errs <- errorsNew("genuine client rejected under concurrency")
					}
				case 3:
					// Read-side traffic.
					srv.Stats()
					srv.Enrolled("dev-c")
					srv.NeedsRemap("dev-c")
					srv.ClientIDs()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Concurrent issuing must never hand out overlapping pairs.
func TestConcurrentIssueNoPairOverlap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 16
	m := testMap(t, 16384, 100, 62, 680)
	srv := NewServer(cfg, 10)
	if _, err := srv.Enroll(ctx, "dev-c", m); err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 10
	results := make([][][2]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ch, err := srv.IssueChallenge(ctx, "dev-c")
				if err != nil {
					return
				}
				for _, b := range ch.Bits {
					k := [2]int{b.A, b.B}
					if b.A > b.B {
						k = [2]int{b.B, b.A}
					}
					results[g] = append(results[g], k)
				}
			}
		}(g)
	}
	wg.Wait()
	seen := map[[2]int]bool{}
	for g := range results {
		for _, k := range results[g] {
			if seen[k] {
				t.Fatalf("pair %v issued to two transactions", k)
			}
			seen[k] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no pairs issued")
	}
}
