package auth

import (
	"context"
	"net"

	"repro/internal/crp"
	"repro/internal/wire"
)

// RelayClient forwards individual transaction halves to a remote
// authd over one pipelined v2 connection. Unlike WireClient, which
// runs a whole transaction for a device that can answer challenges,
// the relay splits the transaction at the operation seam TxBackend
// defines: BeginAuth brings the challenge back to the forwarding
// node, the device's response goes out through Finish. A cluster
// router holds one RelayClient per peer and implements TxBackend with
// it; concurrent forwarded transactions pipeline on the shared
// connection, each on its own stream.
type RelayClient struct {
	c2 *clientV2
}

// DialRelay connects a relay to a remote authd speaking v2. ctx
// bounds the connection attempt only.
func DialRelay(ctx context.Context, addr string) (*RelayClient, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, authErrf(CodeUnavailable, "", "%w: relay dial %s: %w", ErrUnavailable, addr, err)
	}
	return NewRelayClient(conn)
}

// NewRelayClient wraps an established connection (tests inject fault
// wrappers here), writing the v2 preamble immediately.
func NewRelayClient(conn net.Conn) (*RelayClient, error) {
	c2, err := newClientV2(conn)
	if err != nil {
		return nil, authErrf(CodeUnavailable, "", "%w: relay preamble: %w", ErrUnavailable, err)
	}
	return &RelayClient{c2: c2}, nil
}

// Close releases the connection; in-flight transactions fail with a
// retryable connection-lost error.
func (rc *RelayClient) Close() error { return rc.c2.close() }

// RelayAuthTx is a forwarded authentication transaction between its
// two halves: the remote stream stays open, waiting for the device's
// response. Exactly one of Finish or Abandon must be called.
type RelayAuthTx struct {
	c      *clientV2
	stream uint32
	ch     chan *wire.Buf
}

// BeginAuth forwards the opening half of an authentication: the
// remote node issues (and journals) the challenge; the returned tx
// carries the device's response back on the same stream.
func (rc *RelayClient) BeginAuth(ctx context.Context, id ClientID) (*crp.Challenge, *RelayAuthTx, error) {
	if err := ctxErr(ctx, id); err != nil {
		return nil, nil, err
	}
	stream, ch, err := rc.c2.openStream()
	if err != nil {
		return nil, nil, err
	}
	out := wire.GetBuf()
	out.B = wire.AppendClientID(out.B[:0], stream, wire.OpAuthenticate, string(id))
	if !rc.c2.fw.send(out) {
		rc.c2.closeStream(stream)
		return nil, nil, rc.c2.connLost()
	}
	b, err := rc.c2.recv(ctx, ch)
	if err != nil {
		rc.c2.closeStream(stream)
		return nil, nil, err
	}
	challenge, err := expectChallenge(b)
	if err != nil {
		rc.c2.closeStream(stream)
		return nil, nil, err
	}
	return challenge, &RelayAuthTx{c: rc.c2, stream: stream, ch: ch}, nil
}

// Finish forwards the device's response and returns the remote
// verdict. The confirmation tag rides the verdict, so the forwarding
// node never holds the session key.
func (tx *RelayAuthTx) Finish(ctx context.Context, challengeID uint64, resp crp.Response) (AuthVerdict, error) {
	defer tx.c.closeStream(tx.stream)
	out := wire.GetBuf()
	out.B = wire.AppendResponse(out.B[:0], tx.stream, challengeID, &resp)
	if !tx.c.fw.send(out) {
		return AuthVerdict{}, tx.c.connLost()
	}
	vb, err := tx.c.recv(ctx, tx.ch)
	if err != nil {
		return AuthVerdict{}, err
	}
	v, err := expectVerdict(vb)
	if err != nil {
		return AuthVerdict{}, err
	}
	return AuthVerdict{
		Accepted:     v.Accepted,
		RemapAdvised: v.RemapAdvised,
		HasConfirm:   v.HasConfirm,
		Confirm:      v.Confirm,
	}, nil
}

// Abandon drops a transaction whose second half will never come (the
// device went away). The remote stream times out on its own idle
// deadline; the local stream is released immediately.
func (tx *RelayAuthTx) Abandon() { tx.c.closeStream(tx.stream) }

// RelayRemapTx is a forwarded key-update transaction between halves.
type RelayRemapTx struct {
	c      *clientV2
	stream uint32
	ch     chan *wire.Buf
}

// BeginRemap forwards the opening half of a key update.
func (rc *RelayClient) BeginRemap(ctx context.Context, id ClientID) (*RemapRequest, *RelayRemapTx, error) {
	if err := ctxErr(ctx, id); err != nil {
		return nil, nil, err
	}
	stream, ch, err := rc.c2.openStream()
	if err != nil {
		return nil, nil, err
	}
	out := wire.GetBuf()
	out.B = wire.AppendClientID(out.B[:0], stream, wire.OpRemap, string(id))
	if !rc.c2.fw.send(out) {
		rc.c2.closeStream(stream)
		return nil, nil, rc.c2.connLost()
	}
	b, err := rc.c2.recv(ctx, ch)
	if err != nil {
		rc.c2.closeStream(stream)
		return nil, nil, err
	}
	req, err := expectRemapChallenge(b)
	if err != nil {
		rc.c2.closeStream(stream)
		return nil, nil, err
	}
	return req, &RelayRemapTx{c: rc.c2, stream: stream, ch: ch}, nil
}

// Finish forwards the device's key-derivation outcome and waits for
// the remote ack.
func (tx *RelayRemapTx) Finish(ctx context.Context, success bool) error {
	defer tx.c.closeStream(tx.stream)
	out := wire.GetBuf()
	out.B = wire.AppendRemapDone(out.B[:0], tx.stream, success)
	if !tx.c.fw.send(out) {
		return tx.c.connLost()
	}
	ack, err := tx.c.recv(ctx, tx.ch)
	if err != nil {
		return err
	}
	return expectRemapAck(ack)
}

// Abandon drops a forwarded key update mid-transaction.
func (tx *RelayRemapTx) Abandon() { tx.c.closeStream(tx.stream) }
