package auth

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/crp"
	"repro/internal/wire"
)

// Server side of the v2 binary framing: one reader goroutine per
// connection demultiplexes frames onto per-stream transaction
// goroutines, which reply through a shared frameWriter. Streams
// complete out of order, so a slow verification does not head-of-line
// block the connection; the existing MaxInFlight shedding applies per
// transaction exactly as on v1, plus a per-connection stream cap.

// v2conn is the demultiplexer state for one binary-framed connection.
type v2conn struct {
	ws   *WireServer
	conn net.Conn
	br   *bufio.Reader
	fw   *frameWriter
	// readerGone is closed when the read loop returns, so stream
	// goroutines stop waiting for frames that can no longer arrive.
	readerGone chan struct{}
	wg         sync.WaitGroup

	mu      sync.Mutex
	streams map[uint32]*v2stream
	txCount int
}

// v2stream is one in-flight transaction on a v2 connection.
type v2stream struct {
	id uint32
	// inbox carries this stream's continuation frames (response,
	// remap_done) from the reader to the transaction goroutine.
	inbox chan *wire.Buf
}

// handleV2 runs one binary-framed connection to completion: reader
// loop in this goroutine, one goroutine per open stream, one writer.
func (ws *WireServer) handleV2(ctx context.Context, conn net.Conn, br *bufio.Reader) {
	c := &v2conn{
		ws:         ws,
		conn:       conn,
		br:         br,
		fw:         newFrameWriter(conn, ws.cfg.IdleTimeout),
		readerGone: make(chan struct{}),
		streams:    make(map[uint32]*v2stream),
	}
	go c.fw.loop()
	c.readLoop(ctx)
	close(c.readerGone)
	// Let in-flight streams finish their replies, then stop the
	// writer so their last frames are flushed before the connection
	// owner closes it.
	c.wg.Wait()
	c.fw.stop()
}

// readLoop reads frames until the peer breaks, stalls, or exhausts
// the connection's transaction budget.
//
// This is the client-facing demultiplexer: PROTOCOL.md confines the
// rep_* opcodes to a node's dedicated replication listener, and the
// repinvariant fence below pins this file's dispatch against the
// protocol's opcode table — a case arm accepting a rep_* opcode (by
// constant or by value) fails make lint.
//
//lint:repfence ../../docs/PROTOCOL.md#framing-v2-opcode-table
func (c *v2conn) readLoop(ctx context.Context) {
	for {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.ws.cfg.IdleTimeout)); err != nil {
			return
		}
		b := wire.GetBuf()
		if err := wire.ReadFrameInto(c.br, b, c.ws.cfg.MaxMessageBytes); err != nil {
			wire.PutBuf(b)
			return
		}
		switch b.Op {
		case wire.OpAuthenticate, wire.OpRemap:
			if !c.openStream(ctx, b) {
				return
			}
		case wire.OpResponse, wire.OpRemapDone:
			if !c.deliver(b) {
				return
			}
		case wire.OpProbe:
			// Health probe: answered inline from the read loop,
			// deliberately bypassing MaxInFlight shedding — a probe
			// measures liveness, and a loaded-but-alive node must still
			// answer it so the failure detector does not confuse load
			// with death.
			stream := b.Stream
			wire.PutBuf(b)
			out := wire.GetBuf()
			out.B = wire.AppendHealth(out.B[:0], stream, c.ws.healthReport())
			if !c.fw.send(out) {
				return
			}
		default:
			// A server-only or unknown opcode from a client is framing
			// confusion: answer typed, then hang up.
			stream := b.Stream
			op := b.Op
			wire.PutBuf(b)
			c.sendErrV2(stream, authErrf(CodeInvalidRequest, "", "unexpected opcode %q", op))
			return
		}
	}
}

// openStream admits an opening frame: budget and cap checks, then a
// transaction goroutine. False hangs the connection up.
func (c *v2conn) openStream(ctx context.Context, b *wire.Buf) bool {
	c.mu.Lock()
	if c.txCount >= c.ws.cfg.MaxTransactionsPerConn {
		c.mu.Unlock()
		wire.PutBuf(b)
		return false
	}
	if _, dup := c.streams[b.Stream]; dup {
		// Reusing a live stream id is a protocol violation.
		c.mu.Unlock()
		wire.PutBuf(b)
		return false
	}
	if len(c.streams) >= c.ws.cfg.MaxStreamsPerConn {
		c.mu.Unlock()
		stream := b.Stream
		wire.PutBuf(b)
		// Per-stream shedding: the connection stays healthy, only
		// this transaction is refused.
		c.sendErrV2(stream, authErrf(CodeUnavailable, "",
			"%w: per-connection stream cap %d reached", ErrUnavailable, c.ws.cfg.MaxStreamsPerConn))
		return true
	}
	c.txCount++
	st := &v2stream{id: b.Stream, inbox: make(chan *wire.Buf, 2)}
	c.streams[st.id] = st
	c.mu.Unlock()
	release := c.ws.acquire()
	if release == nil {
		// Global in-flight shedding, same classification as v1: the
		// client backs off and retries on this healthy connection.
		c.closeStream(st.id)
		stream := b.Stream
		id := ClientID(b.B)
		wire.PutBuf(b)
		c.sendErrV2(stream, authErrf(CodeUnavailable, id,
			"%w: in-flight transaction cap %d reached", ErrUnavailable, c.ws.cfg.MaxInFlight))
		return true
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer c.closeStream(st.id)
		defer release()
		c.runStream(ctx, st, b)
	}()
	return true
}

// closeStream removes a stream and returns any undelivered frame to
// the pool.
func (c *v2conn) closeStream(id uint32) {
	c.mu.Lock()
	st := c.streams[id]
	delete(c.streams, id)
	c.mu.Unlock()
	if st == nil {
		return
	}
	for {
		select {
		case b := <-st.inbox:
			wire.PutBuf(b)
		default:
			return
		}
	}
}

// deliver routes a continuation frame to its stream; false hangs the
// connection up (a continuation for a stream that is not open is a
// protocol violation only a broken peer produces).
func (c *v2conn) deliver(b *wire.Buf) bool {
	c.mu.Lock()
	st := c.streams[b.Stream]
	c.mu.Unlock()
	if st == nil {
		wire.PutBuf(b)
		return false
	}
	select {
	case st.inbox <- b:
		return true
	default:
		// More than one outstanding continuation on a lock-step
		// stream: the peer is flooding.
		wire.PutBuf(b)
		return false
	}
}

// await waits for a stream's continuation frame, bounded by the idle
// timeout and by the reader's lifetime.
func (c *v2conn) await(st *v2stream) (*wire.Buf, error) {
	select {
	case b := <-st.inbox:
		return b, nil
	default:
	}
	t := time.NewTimer(c.ws.cfg.IdleTimeout)
	defer t.Stop()
	select {
	case b := <-st.inbox:
		return b, nil
	case <-c.readerGone:
		return nil, io.EOF
	case <-t.C:
		return nil, authErrf(CodeInvalidRequest, "", "auth: peer stalled mid-transaction")
	}
}

// runStream executes one transaction. open is the opening frame; its
// payload is the client id.
func (c *v2conn) runStream(ctx context.Context, st *v2stream, open *wire.Buf) {
	id := ClientID(open.B)
	op := open.Op
	wire.PutBuf(open)
	switch op {
	case wire.OpAuthenticate:
		c.streamAuthenticate(ctx, st, id)
	case wire.OpRemap:
		c.streamRemap(ctx, st, id)
	default:
		// Unreachable: readLoop only opens streams for the two opening
		// opcodes. The arm keeps the dispatch total for the repfence.
	}
}

// streamAuthenticate is the v2 counterpart of handleAuthenticate:
// challenge out, response in, verdict out, all on one stream.
func (c *v2conn) streamAuthenticate(ctx context.Context, st *v2stream, id ClientID) {
	ch, err := c.ws.backend.BeginAuth(ctx, id)
	if err != nil {
		c.sendErrV2(st.id, err)
		return
	}
	out := wire.GetBuf()
	out.B = wire.AppendChallenge(out.B[:0], st.id, ch)
	if !c.fw.send(out) {
		return
	}
	b, err := c.await(st)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			c.sendErrV2(st.id, err)
		}
		return
	}
	if b.Op != wire.OpResponse {
		op := b.Op
		wire.PutBuf(b)
		c.sendErrV2(st.id, authErrf(CodeInvalidRequest, id, "expected response, got %q", op))
		return
	}
	var resp crp.Response
	chID, derr := wire.DecodeResponse(b.B, &resp)
	wire.PutBuf(b)
	if derr != nil {
		c.sendErrV2(st.id, authErrf(CodeInvalidRequest, id, "bad response payload: %v", derr))
		return
	}
	av, err := c.ws.backend.FinishAuth(ctx, id, chID, resp)
	if err != nil {
		c.sendErrV2(st.id, err)
		return
	}
	v := wire.Verdict{
		Accepted:     av.Accepted,
		RemapAdvised: av.RemapAdvised,
		HasConfirm:   av.HasConfirm,
		Confirm:      av.Confirm,
	}
	out = wire.GetBuf()
	out.B = wire.AppendVerdict(out.B[:0], st.id, v)
	c.fw.send(out)
}

// streamRemap is the v2 counterpart of handleRemap. The remap
// challenge payload stays JSON: the key-update path is cold and the
// helper-data structure is deeply nested.
func (c *v2conn) streamRemap(ctx context.Context, st *v2stream, id ClientID) {
	req, err := c.ws.backend.BeginRemapTx(ctx, id)
	if err != nil {
		c.sendErrV2(st.id, err)
		return
	}
	payload, err := json.Marshal(req)
	if err != nil {
		c.sendErrV2(st.id, authErrf(CodeInternal, id, "encoding remap challenge: %v", err))
		return
	}
	out := wire.GetBuf()
	out.B = wire.AppendRaw(out.B[:0], st.id, wire.OpRemapChallenge, payload)
	if !c.fw.send(out) {
		return
	}
	b, err := c.await(st)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			c.sendErrV2(st.id, err)
		}
		return
	}
	if b.Op != wire.OpRemapDone {
		op := b.Op
		wire.PutBuf(b)
		c.sendErrV2(st.id, authErrf(CodeInvalidRequest, id, "expected remap_done, got %q", op))
		return
	}
	success, derr := wire.DecodeRemapDone(b.B)
	wire.PutBuf(b)
	if derr != nil {
		c.sendErrV2(st.id, authErrf(CodeInvalidRequest, id, "bad remap_done payload: %v", derr))
		return
	}
	if err := c.ws.backend.FinishRemapTx(ctx, id, success); err != nil {
		c.sendErrV2(st.id, err)
		return
	}
	out = wire.GetBuf()
	out.B = wire.AppendRemapAck(out.B[:0], st.id)
	c.fw.send(out)
}

// sendErrV2 reports a typed failure on one stream, carrying the same
// taxonomy fields as the v1 error message.
func (c *v2conn) sendErrV2(stream uint32, err error) {
	code := string(CodeOf(err))
	client := ""
	msg := err.Error()
	var ae *AuthError
	if errors.As(err, &ae) {
		client = string(ae.ClientID)
		if ae.Err != nil {
			// Send the cause text: the receiving side re-wraps it in
			// an AuthError, which re-attaches the structured suffix.
			msg = ae.Err.Error()
		}
	}
	b := wire.GetBuf()
	b.B = wire.AppendError(b.B[:0], stream, code, client, msg)
	c.fw.send(b)
}
