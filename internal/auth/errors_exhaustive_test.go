package auth

import (
	"errors"
	"testing"
)

// allErrorCodes enumerates every declared ErrorCode. A code added to
// errors.go without being added here fails TestAllCodesEnumerated via
// the codeSentinels/CodeOf cross-checks below (and the errtaxonomy
// analyzer flags the declaration gaps statically).
var allErrorCodes = []ErrorCode{
	CodeUnknownClient,
	CodeAlreadyEnrolled,
	CodeUnknownChallenge,
	CodeExhausted,
	CodeNoRemapPending,
	CodeBadPlane,
	CodeInvalidRequest,
	CodeCanceled,
	CodeInternal,
	CodeUnavailable,
}

// allSentinels enumerates every package sentinel.
var allSentinels = []error{
	ErrUnknownClient,
	ErrAlreadyEnrolled,
	ErrUnknownChallenge,
	ErrExhausted,
	ErrNoRemapPending,
	ErrBadPlane,
	ErrUnavailable,
}

// TestSentinelTablesMutuallyExhaustive pins the static contract the
// errtaxonomy analyzer enforces: every sentinel is decodable through
// codeSentinels, and the decode table agrees with CodeOf's encode
// switch.
func TestSentinelTablesMutuallyExhaustive(t *testing.T) {
	if got, want := len(codeSentinels), len(allSentinels); got != want {
		t.Errorf("codeSentinels has %d entries, want %d (one per sentinel)", got, want)
	}
	seen := make(map[ErrorCode]bool)
	for _, sentinel := range allSentinels {
		code := CodeOf(sentinel)
		if code == CodeInternal {
			t.Errorf("CodeOf(%v) degrades to internal: missing encode case", sentinel)
			continue
		}
		seen[code] = true
		mapped, ok := codeSentinels[code]
		if !ok {
			t.Errorf("code %q (sentinel %v) missing from codeSentinels", code, sentinel)
			continue
		}
		if !errors.Is(mapped, sentinel) {
			t.Errorf("codeSentinels[%q] = %v, want %v: encode and decode disagree", code, mapped, sentinel)
		}
	}
	for code := range codeSentinels {
		if !seen[code] {
			t.Errorf("codeSentinels key %q has no matching sentinel in the declared set", code)
		}
	}
}

// TestErrorCodeWireRoundTrip drives every code through the wire path:
// encode with CodeOf (what sendErr transmits), rebuild with
// errorFromWire (what the client reconstructs), and require both the
// code and errors.Is parity to survive.
func TestErrorCodeWireRoundTrip(t *testing.T) {
	for _, code := range allErrorCodes {
		local := authErrf(code, "c1", "auth: synthetic %s failure", code)
		wireCode := CodeOf(local)
		if wireCode != code {
			t.Errorf("CodeOf(authErrf(%q, ...)) = %q, want the same code", code, wireCode)
		}
		remote := errorFromWire(wireCode, "c1", local.Error())
		if got := CodeOf(remote); got != code {
			t.Errorf("code %q round-trips over the wire as %q", code, got)
		}
		if sentinel, ok := codeSentinels[code]; ok && !errors.Is(remote, sentinel) {
			t.Errorf("remote error for %q does not satisfy errors.Is against its sentinel %v", code, sentinel)
		}
	}
}

// TestPreTaxonomyWireErrorDegrades pins the documented fallback: a
// message with no code (pre-taxonomy server) rebuilds as an untyped
// error that CodeOf classifies as internal.
func TestPreTaxonomyWireErrorDegrades(t *testing.T) {
	err := errorFromWire("", "c1", "something opaque")
	if err == nil {
		t.Fatal("errorFromWire(\"\", ...) returned nil")
	}
	if got := CodeOf(err); got != CodeInternal {
		t.Errorf("pre-taxonomy error classifies as %q, want %q", got, CodeInternal)
	}
	for _, sentinel := range allSentinels {
		if errors.Is(err, sentinel) {
			t.Errorf("pre-taxonomy error unexpectedly satisfies errors.Is(%v)", sentinel)
		}
	}
}
