package auth

import (
	"errors"
	"testing"

	"repro/internal/crp"
	"repro/internal/mapkey"
)

// captureJournal records burned pairs; the other mutations are
// irrelevant here.
type captureJournal struct{ pairs []crp.PairBit }

func (c *captureJournal) JournalEnroll(string, []byte, [32]byte, []int) error { return nil }
func (c *captureJournal) JournalBurn(_ string, pairs []crp.PairBit, _ uint64, _ int) error {
	c.pairs = append(c.pairs, pairs...)
	return nil
}
func (c *captureJournal) JournalRemap(string, [32]byte) error { return nil }
func (c *captureJournal) JournalCounter(string, uint64) error { return nil }
func (c *captureJournal) JournalDelete(string) error          { return nil }

// A server rebuilt from a journal (crash recovery, or a follower
// applying a primary's log) starts its deterministic challenge stream
// over from the shared seed — but the registry it rebuilt already
// holds every pair the original stream drew. Replaying the stream
// verbatim then samples nothing but burned pairs and issuance dies
// with a spurious CodeExhausted while the pair space is almost
// entirely free. Recovery paths must salt the stream
// (SaltChallengeStream) after replay; this test pins both halves: the
// unsalted server really does walk into the burned prefix, and the
// salt really does decorrelate it.
func TestRecoveredStreamMustBeSalted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 64
	m := testMap(t, 16384, 100, 7, 680)
	mb, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var key mapkey.Key

	// Both servers share the seed; ReplayEnroll consumes no randomness,
	// so their streams are exactly aligned — the same alignment a
	// journal-rebuilt server has with its pre-crash self.
	const seed = 0x5eed
	cap := &captureJournal{}
	ocfg := cfg
	ocfg.WAL = cap
	original := NewServer(ocfg, seed)
	if err := original.ReplayEnroll("dev-1", mb, key, nil); err != nil {
		t.Fatal(err)
	}
	recovered := NewServer(cfg, seed)
	if err := recovered.ReplayEnroll("dev-1", mb, key, nil); err != nil {
		t.Fatal(err)
	}

	ch, err := original.IssueChallenge(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	// Replicate the burn, as log replay would.
	if len(cap.pairs) != cfg.ChallengeBits {
		t.Fatalf("journal captured %d burned pairs, want %d", len(cap.pairs), cfg.ChallengeBits)
	}
	if err := recovered.ReplayBurn("dev-1", cap.pairs, ch.ID+1, len(cap.pairs)); err != nil {
		t.Fatal(err)
	}

	// Unsalted, the recovered server re-draws the original's exact
	// sequence: 64 consecutive used-pair hits exhaust the retry budget.
	if _, err := recovered.IssueChallenge(ctx, "dev-1"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("unsalted recovered server issued from the burned prefix (err=%v); "+
			"if stream alignment changed, rework this test's setup", err)
	}

	// Salted, the stream diverges and issuance succeeds immediately.
	recovered.SaltChallengeStream(1)
	if _, err := recovered.IssueChallenge(ctx, "dev-1"); err != nil {
		t.Fatalf("salted recovered server still cannot issue: %v", err)
	}
}
