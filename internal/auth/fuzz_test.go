package auth

import (
	"strings"
	"testing"

	"repro/internal/errormap"
	"repro/internal/rng"
)

// FuzzLoadState hardens the enrollment-database decoder against
// corrupted or malicious state files: arbitrary input must either load
// a usable database or be rejected cleanly.
func FuzzLoadState(f *testing.F) {
	// Seed with a real state file.
	g := errormap.NewGeometry(1024)
	m := errormap.NewMap(g)
	m.AddPlane(680, errormap.RandomPlane(g, 20, rng.New(77)))
	srv := NewServer(DefaultConfig(), 1)
	if _, err := srv.Enroll(ctx, "seed-dev", m); err != nil {
		f.Fatal(err)
	}
	var sb strings.Builder
	if err := srv.SaveState(&sb); err != nil {
		f.Fatal(err)
	}
	f.Add(sb.String())
	f.Add("")
	f.Add("{}")
	f.Add(`{"version":1,"clients":[{"id":"x","map":"!!!","key":"00"}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		target := NewServer(DefaultConfig(), 2)
		if err := target.LoadState(strings.NewReader(data)); err != nil {
			return
		}
		// A successfully loaded database must be fully operational:
		// every listed client resolves a key, and challenge issue
		// either works or fails with a protocol error (never panics).
		for _, id := range target.ClientIDs() {
			if _, err := target.CurrentKey(id); err != nil {
				t.Fatalf("loaded client %q has no key: %v", id, err)
			}
			_, _ = target.IssueChallenge(ctx, id)
		}
	})
}
