package auth

import (
	"testing"

	"repro/internal/crp"
	"repro/internal/mapkey"
)

func TestSessionKeyAgreement(t *testing.T) {
	m := testMap(t, 16384, 100, 41, 680)
	srv, resp := enrolledPair(t, DefaultConfig(), m, m)

	ch, err := srv.IssueChallenge(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	answer, err := resp.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	ok, srvKey, err := srv.VerifySession(ctx, "dev-1", ch.ID, answer)
	if err != nil || !ok {
		t.Fatalf("verify: ok=%v err=%v", ok, err)
	}
	cliKey := resp.SessionKey(ch)
	if srvKey != cliKey {
		t.Fatal("server and client derived different session keys")
	}
	if srvKey == ([32]byte{}) {
		t.Fatal("zero session key")
	}
}

func TestSessionKeysUniquePerTransaction(t *testing.T) {
	m := testMap(t, 16384, 100, 42, 680)
	srv, resp := enrolledPair(t, DefaultConfig(), m, m)
	seen := map[[32]byte]bool{}
	for i := 0; i < 5; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		answer, _ := resp.Respond(ch)
		ok, key, err := srv.VerifySession(ctx, "dev-1", ch.ID, answer)
		if err != nil || !ok {
			t.Fatalf("round %d: ok=%v err=%v", i, ok, err)
		}
		if seen[key] {
			t.Fatal("session key repeated across transactions")
		}
		seen[key] = true
	}
}

func TestNoSessionKeyOnRejection(t *testing.T) {
	enrolled := testMap(t, 16384, 100, 43, 680)
	impostor := testMap(t, 16384, 100, 143, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), enrolled, enrolled)
	key, _ := srv.CurrentKey("dev-1")
	fake := NewResponder("dev-1", NewSimDevice(impostor), key)

	ch, _ := srv.IssueChallenge(ctx, "dev-1")
	answer, _ := fake.Respond(ch)
	ok, sess, err := srv.VerifySession(ctx, "dev-1", ch.ID, answer)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impostor accepted")
	}
	if sess != ([32]byte{}) {
		t.Fatal("rejected transaction yielded a session key")
	}
}

func TestSessionKeyNeedsRemapKey(t *testing.T) {
	// An eavesdropper who records the full challenge cannot derive the
	// session key without the remap key.
	ch := &crp.Challenge{ID: 5, Bits: []crp.PairBit{{A: 1, B: 2, VddMV: 680}}}
	k1 := mapkey.KeyFromBytes([]byte("right"), "k")
	k2 := mapkey.KeyFromBytes([]byte("wrong"), "k")
	if SessionKey(k1, ch) == SessionKey(k2, ch) {
		t.Fatal("session key independent of the remap key")
	}
	// And the key binds the challenge contents.
	ch2 := &crp.Challenge{ID: 5, Bits: []crp.PairBit{{A: 1, B: 3, VddMV: 680}}}
	if SessionKey(k1, ch) == SessionKey(k1, ch2) {
		t.Fatal("session key independent of the challenge")
	}
}

func TestVerifySessionUnknownChallenge(t *testing.T) {
	m := testMap(t, 4096, 50, 44, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m)
	ok, sess, err := srv.VerifySession(ctx, "dev-1", 999, crp.NewResponse(256))
	if ok || err == nil || sess != ([32]byte{}) {
		t.Fatalf("unknown challenge: ok=%v sess=%x err=%v", ok, sess[:4], err)
	}
}
