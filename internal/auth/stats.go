package auth

import "sync/atomic"

// serverCounters are the service counters, updated lock-free on the
// hot paths so stats never serialise issue/verify traffic.
type serverCounters struct {
	issued   atomic.Int64
	accepted atomic.Int64
	rejected atomic.Int64
}

// ServerStats is a point-in-time snapshot of the service counters.
// Counters are read individually without a global lock, so a snapshot
// taken during concurrent traffic may be torn by a few in-flight
// operations; each counter is itself exact.
type ServerStats struct {
	Issued   int64 `json:"issued"`
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Clients  int   `json:"clients"`
}

// Stats reports issue/accept/reject counters and the enrolled-client
// count.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Issued:   s.stats.issued.Load(),
		Accepted: s.stats.accepted.Load(),
		Rejected: s.stats.rejected.Load(),
		Clients:  s.store.Len(),
	}
}
