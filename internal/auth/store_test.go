package auth

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := testMap(t, 16384, 100, 21, 680, 700)
	srv, resp := enrolledPair(t, DefaultConfig(), m, m, 700)

	// Burn some pairs so the registry has content.
	for i := 0; i < 3; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		answer, _ := resp.Respond(ch)
		if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); !ok {
			t.Fatal("setup auth failed")
		}
	}

	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewServer(DefaultConfig(), 999)
	if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !restored.Enrolled("dev-1") {
		t.Fatal("client lost across save/load")
	}
	// The key survives: the existing responder still authenticates.
	ch, err := restored.IssueChallenge(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	answer, err := resp.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := restored.Verify(ctx, "dev-1", ch.ID, answer); !ok {
		t.Fatal("restored server rejected the genuine client")
	}
	// Reserved plane survives.
	if _, err := restored.IssueChallengeAt(ctx, "dev-1", 700); err == nil {
		t.Fatal("restored server forgot the reserved plane")
	}
}

// The no-reuse registry is a security invariant; it must survive
// restarts so burned pairs stay burned.
func TestRegistrySurvivesRestart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 32
	m := testMap(t, 1024, 30, 22, 680)
	srv, _ := enrolledPair(t, cfg, m, m)

	burned := map[[2]int]bool{}
	for i := 0; i < 4; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range ch.Bits {
			k := [2]int{b.A, b.B}
			if b.A > b.B {
				k = [2]int{b.B, b.A}
			}
			burned[k] = true
		}
	}
	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewServer(cfg, 1234)
	if err := restored.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	// Newly issued pairs must avoid everything burned pre-restart.
	for i := 0; i < 4; i++ {
		ch, err := restored.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range ch.Bits {
			k := [2]int{b.A, b.B}
			if b.A > b.B {
				k = [2]int{b.B, b.A}
			}
			if burned[k] {
				t.Fatalf("pair %v reissued after restart", k)
			}
		}
	}
}

// The rotation budget must survive a restart (v2). Before v2, a
// bounced server forgot how many CRPs the current key had served and
// never advised a remap.
func TestCRPBudgetSurvivesRestart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 32
	cfg.RemapAfterCRPs = 3
	m := testMap(t, 1024, 30, 25, 680, 700)
	srv, resp := enrolledPair(t, cfg, m, m, 700)

	for i := 0; i < cfg.RemapAfterCRPs; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		answer, _ := resp.Respond(ch)
		if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); !ok {
			t.Fatal("setup auth failed")
		}
	}
	if !srv.NeedsRemap("dev-1") {
		t.Fatal("remap not advised after burning the budget")
	}

	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"crps_since_remap"`) {
		t.Fatal("v2 state does not persist crps_since_remap")
	}
	restored := NewServer(cfg, 777)
	if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !restored.NeedsRemap("dev-1") {
		t.Fatal("restart reset the rotation budget")
	}

	// Rotating the key must clear the persisted counter on both sides
	// of a save/load.
	if _, err := restored.BeginRemap(ctx, "dev-1"); err != nil {
		t.Fatal(err)
	}
	if err := restored.CompleteRemap(ctx, "dev-1", true); err != nil {
		t.Fatal(err)
	}
	if restored.NeedsRemap("dev-1") {
		t.Fatal("remap still advised after key rotation")
	}
}

// v1 blobs (no crps_since_remap, version: 1) must still load, with the
// rotation budget conservatively zeroed.
func TestLoadStateAcceptsV1(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 32
	cfg.RemapAfterCRPs = 2
	m := testMap(t, 1024, 30, 26, 680)
	srv, resp := enrolledPair(t, cfg, m, m)
	for i := 0; i < cfg.RemapAfterCRPs; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		answer, _ := resp.Respond(ch)
		if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); !ok {
			t.Fatal("setup auth failed")
		}
	}
	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Downgrade the blob to the v1 shape a pre-upgrade server wrote.
	v1 := strings.Replace(buf.String(), `"version": 2`, `"version": 1`, 1)
	v1 = regexp.MustCompile(`,?\s*"crps_since_remap": \d+`).ReplaceAllString(v1, "")

	restored := NewServer(cfg, 888)
	if err := restored.LoadState(strings.NewReader(v1)); err != nil {
		t.Fatalf("v1 state rejected: %v", err)
	}
	if !restored.Enrolled("dev-1") {
		t.Fatal("client lost loading v1 state")
	}
	if restored.NeedsRemap("dev-1") {
		t.Fatal("v1 load should zero the rotation budget, not invent one")
	}
	// The responder still works against the v1-restored server.
	ch, err := restored.IssueChallenge(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	answer, _ := resp.Respond(ch)
	if ok, _ := restored.Verify(ctx, "dev-1", ch.ID, answer); !ok {
		t.Fatal("v1-restored server rejected the genuine client")
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	srv := NewServer(DefaultConfig(), 1)
	cases := map[string]string{
		"not json":       "not json at all",
		"bad version":    `{"version": 99, "clients": []}`,
		"empty id":       `{"version": 1, "clients": [{"id": "", "map": "", "key": ""}]}`,
		"bad map":        `{"version": 1, "clients": [{"id": "x", "map": "aGk=", "key": "00"}]}`,
		"duplicate":      "",
		"bad key length": "",
		"ghost reserved": "",
	}
	for name, payload := range cases {
		if payload == "" {
			continue // exercised below with structured builders
		}
		if err := srv.LoadState(strings.NewReader(payload)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadStateRejectsDuplicateAndBadKey(t *testing.T) {
	m := testMap(t, 1024, 20, 23, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m)
	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// Duplicate the single client entry by JSON surgery: replace the
	// clients array with the same entry twice.
	entryStart := strings.Index(good, `{`+"\n"+` "id"`)
	if entryStart < 0 {
		entryStart = strings.Index(good, `{"id"`)
	}
	if entryStart < 0 {
		t.Skip("unexpected encoding layout")
	}
	entryEnd := strings.LastIndex(good, `}`)
	entry := good[entryStart : entryEnd-2]
	dupPayload := good[:entryStart] + entry + "," + entry + good[entryEnd-2:]
	target := NewServer(DefaultConfig(), 2)
	if err := target.LoadState(strings.NewReader(dupPayload)); err == nil {
		t.Error("duplicate client accepted")
	}

	// Corrupt the key.
	badKey := strings.Replace(good, `"key": "`, `"key": "zz`, 1)
	if err := target.LoadState(strings.NewReader(badKey)); err == nil {
		t.Error("corrupt key accepted")
	}
}

func TestSaveStateDeterministic(t *testing.T) {
	m := testMap(t, 4096, 40, 24, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m)
	var a, b bytes.Buffer
	if err := srv.SaveState(&a); err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveState(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SaveState output not deterministic")
	}
}
