package auth

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := testMap(t, 16384, 100, 21, 680, 700)
	srv, resp := enrolledPair(t, DefaultConfig(), m, m, 700)

	// Burn some pairs so the registry has content.
	for i := 0; i < 3; i++ {
		ch, err := srv.IssueChallenge("dev-1")
		if err != nil {
			t.Fatal(err)
		}
		answer, _ := resp.Respond(ch)
		if ok, _ := srv.Verify("dev-1", ch.ID, answer); !ok {
			t.Fatal("setup auth failed")
		}
	}

	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewServer(DefaultConfig(), 999)
	if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !restored.Enrolled("dev-1") {
		t.Fatal("client lost across save/load")
	}
	// The key survives: the existing responder still authenticates.
	ch, err := restored.IssueChallenge("dev-1")
	if err != nil {
		t.Fatal(err)
	}
	answer, err := resp.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := restored.Verify("dev-1", ch.ID, answer); !ok {
		t.Fatal("restored server rejected the genuine client")
	}
	// Reserved plane survives.
	if _, err := restored.IssueChallengeAt("dev-1", 700); err == nil {
		t.Fatal("restored server forgot the reserved plane")
	}
}

// The no-reuse registry is a security invariant; it must survive
// restarts so burned pairs stay burned.
func TestRegistrySurvivesRestart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 32
	m := testMap(t, 1024, 30, 22, 680)
	srv, _ := enrolledPair(t, cfg, m, m)

	burned := map[[2]int]bool{}
	for i := 0; i < 4; i++ {
		ch, err := srv.IssueChallenge("dev-1")
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range ch.Bits {
			k := [2]int{b.A, b.B}
			if b.A > b.B {
				k = [2]int{b.B, b.A}
			}
			burned[k] = true
		}
	}
	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewServer(cfg, 1234)
	if err := restored.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	// Newly issued pairs must avoid everything burned pre-restart.
	for i := 0; i < 4; i++ {
		ch, err := restored.IssueChallenge("dev-1")
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range ch.Bits {
			k := [2]int{b.A, b.B}
			if b.A > b.B {
				k = [2]int{b.B, b.A}
			}
			if burned[k] {
				t.Fatalf("pair %v reissued after restart", k)
			}
		}
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	srv := NewServer(DefaultConfig(), 1)
	cases := map[string]string{
		"not json":       "not json at all",
		"bad version":    `{"version": 99, "clients": []}`,
		"empty id":       `{"version": 1, "clients": [{"id": "", "map": "", "key": ""}]}`,
		"bad map":        `{"version": 1, "clients": [{"id": "x", "map": "aGk=", "key": "00"}]}`,
		"duplicate":      "",
		"bad key length": "",
		"ghost reserved": "",
	}
	for name, payload := range cases {
		if payload == "" {
			continue // exercised below with structured builders
		}
		if err := srv.LoadState(strings.NewReader(payload)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadStateRejectsDuplicateAndBadKey(t *testing.T) {
	m := testMap(t, 1024, 20, 23, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m)
	var buf bytes.Buffer
	if err := srv.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// Duplicate the single client entry by JSON surgery: replace the
	// clients array with the same entry twice.
	entryStart := strings.Index(good, `{`+"\n"+` "id"`)
	if entryStart < 0 {
		entryStart = strings.Index(good, `{"id"`)
	}
	if entryStart < 0 {
		t.Skip("unexpected encoding layout")
	}
	entryEnd := strings.LastIndex(good, `}`)
	entry := good[entryStart : entryEnd-2]
	dupPayload := good[:entryStart] + entry + "," + entry + good[entryEnd-2:]
	target := NewServer(DefaultConfig(), 2)
	if err := target.LoadState(strings.NewReader(dupPayload)); err == nil {
		t.Error("duplicate client accepted")
	}

	// Corrupt the key.
	badKey := strings.Replace(good, `"key": "`, `"key": "zz`, 1)
	if err := target.LoadState(strings.NewReader(badKey)); err == nil {
		t.Error("corrupt key accepted")
	}
}

func TestSaveStateDeterministic(t *testing.T) {
	m := testMap(t, 4096, 40, 24, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m)
	var a, b bytes.Buffer
	if err := srv.SaveState(&a); err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveState(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SaveState output not deterministic")
	}
}
