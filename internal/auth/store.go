package auth

import (
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/mapkey"
)

// Server state persistence. A production enrollment database must
// survive restarts: the error maps are irreplaceable (they are the
// device identities, measured once at the factory), the remap keys are
// live shared secrets, and the consumed-pair registry is a security
// invariant — losing it would let old challenges be reissued and
// replayed. SaveState/LoadState serialize exactly those three things
// per client, plus the per-key CRP budget that drives remap advice.
//
// Pending (issued-but-unverified) challenges and in-flight key updates
// are deliberately transient: on restart an interrupted transaction
// simply fails and the client retries, which is safe because the
// underlying pairs were burned at issue time.

// storeVersion guards the on-disk format.
//
// Version history:
//
//	1 — initial format
//	2 — adds crps_since_remap; without it a restart silently reset the
//	    rotation budget, so a server bounced often enough would never
//	    advise a remap (the Section 6.7 model-building window reopened
//	    on every restart). v1 blobs still load, with the counter
//	    conservatively zeroed.
const storeVersion = 2

type storedClient struct {
	ID       string        `json:"id"`
	MapB64   string        `json:"map"`
	KeyHex   string        `json:"key"`
	Reserved []int         `json:"reserved,omitempty"`
	Used     []crp.PairBit `json:"used_pairs,omitempty"`
	NextID   uint64        `json:"next_challenge_id"`
	// CRPsSinceRemap persists the rotation budget (v2+).
	CRPsSinceRemap int `json:"crps_since_remap,omitempty"`
}

type storedState struct {
	Version int            `json:"version"`
	Clients []storedClient `json:"clients"`
}

// SaveState writes the full enrollment database to w as JSON. The
// snapshot is per-record consistent: records are locked one at a time,
// so a save concurrent with traffic captures each client at some point
// during the save, not one global instant.
func (s *Server) SaveState(w io.Writer) error {
	st := storedState{Version: storeVersion}
	for _, id := range s.store.IDs() {
		rec, ok := s.store.Get(id)
		if !ok {
			continue // deleted mid-save
		}
		rec.mu.Lock()
		mb, err := rec.physMap.MarshalBinary()
		if err != nil {
			rec.mu.Unlock()
			return fmt.Errorf("auth: marshal map for %q: %w", id, err)
		}
		var reserved []int
		for v := range rec.reserved {
			reserved = append(reserved, v)
		}
		sort.Ints(reserved)
		used := rec.registry.Export()
		sc := storedClient{
			ID:             string(id),
			MapB64:         base64.StdEncoding.EncodeToString(mb),
			KeyHex:         hex.EncodeToString(rec.key[:]),
			Reserved:       reserved,
			Used:           used,
			NextID:         rec.nextID,
			CRPsSinceRemap: rec.crpsSinceRemap,
		}
		rec.mu.Unlock()
		sort.Slice(used, func(i, j int) bool {
			if used[i].VddMV != used[j].VddMV {
				return used[i].VddMV < used[j].VddMV
			}
			if used[i].A != used[j].A {
				return used[i].A < used[j].A
			}
			return used[i].B < used[j].B
		})
		st.Clients = append(st.Clients, sc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&st)
}

// LoadState replaces the enrollment database with the one read from r.
// Both the current version and v1 blobs are accepted; v1 predates the
// persisted rotation budget, which loads as zero.
func (s *Server) LoadState(r io.Reader) error {
	var st storedState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("auth: decode state: %w", err)
	}
	if st.Version != storeVersion && st.Version != 1 {
		return authErrf(CodeInvalidRequest, "", "auth: unsupported state version %d", st.Version)
	}
	clients := make(map[ClientID]*clientRecord, len(st.Clients))
	for _, sc := range st.Clients {
		if sc.ID == "" {
			return authErrf(CodeInvalidRequest, "", "auth: state has a client with empty id")
		}
		mb, err := base64.StdEncoding.DecodeString(sc.MapB64)
		if err != nil {
			return fmt.Errorf("auth: client %q map: %w", sc.ID, err)
		}
		m, err := errormap.UnmarshalMap(mb)
		if err != nil {
			return fmt.Errorf("auth: client %q map: %w", sc.ID, err)
		}
		kb, err := hex.DecodeString(sc.KeyHex)
		if err != nil || len(kb) != 32 {
			return authErrf(CodeInvalidRequest, ClientID(sc.ID), "auth: client %q has a malformed key", sc.ID)
		}
		var key mapkey.Key
		copy(key[:], kb)
		reserved := make(map[int]bool, len(sc.Reserved))
		for _, v := range sc.Reserved {
			if m.Plane(v) == nil {
				return authErrf(CodeInvalidRequest, ClientID(sc.ID), "auth: client %q reserves unenrolled plane %d mV", sc.ID, v)
			}
			reserved[v] = true
		}
		if _, dup := clients[ClientID(sc.ID)]; dup {
			return authErrf(CodeInvalidRequest, ClientID(sc.ID), "auth: duplicate client %q in state", sc.ID)
		}
		rec := newClientRecord(m, key, reserved)
		rec.registry = crp.RestoreRegistryLines(m.Geometry().Lines, sc.Used)
		rec.nextID = sc.NextID
		rec.crpsSinceRemap = sc.CRPsSinceRemap
		clients[ClientID(sc.ID)] = rec
	}
	s.store.ReplaceAll(clients)
	return nil
}
