package auth

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/crp"
)

// Session-key establishment. A successful authentication proves the
// client holds both the silicon and the shared remap key; the same
// transaction can therefore bootstrap a fresh symmetric key for the
// application session without extra round trips. Both sides derive
//
//	sessionKey = HMAC-SHA256(remapKey, "session" || challengeID || challenge bits)
//
// The challenge is unique per transaction (the no-reuse registry
// guarantees it), so session keys never repeat; an eavesdropper sees
// the challenge but lacks the remap key; and a stolen remap key alone
// still fails authentication, so the server never confirms a session
// to an impostor.

// SessionKey derives the per-transaction session key from the shared
// remap key and the issued challenge.
func SessionKey(key [32]byte, ch *crp.Challenge) [32]byte {
	// Assemble the transcript in one buffer and hand the MAC a single
	// write: hundreds of 8-byte writes were a measurable slice of the
	// verify path. The byte stream is unchanged — label, then the
	// challenge ID and each bit's A/B/Vdd as little-endian u64s.
	const label = "authenticache/session/v1"
	buf := make([]byte, 0, len(label)+8+24*len(ch.Bits))
	buf = append(buf, label...)
	buf = binary.LittleEndian.AppendUint64(buf, ch.ID)
	for _, bit := range ch.Bits {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(bit.A)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(bit.B)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(bit.VddMV)))
	}
	mac := hmac.New(sha256.New, key[:])
	mac.Write(buf)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// VerifySession verifies like Verify and, on acceptance, returns the
// derived session key for the transaction.
func (s *Server) VerifySession(ctx context.Context, id ClientID, challengeID uint64, resp crp.Response) (bool, [32]byte, error) {
	if err := ctxErr(ctx, id); err != nil {
		return false, [32]byte{}, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return false, [32]byte{}, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	pend, ok := rec.pending[challengeID]
	if !ok {
		rec.mu.Unlock()
		return false, [32]byte{}, authErr(CodeUnknownChallenge, id, ErrUnknownChallenge)
	}
	delete(rec.pending, challengeID)
	key := rec.key
	rec.mu.Unlock()
	if resp.N != pend.expected.N {
		s.stats.rejected.Add(1)
		return false, [32]byte{}, authErrf(CodeInvalidRequest, id, "auth: response is %d bits, want %d", resp.N, pend.expected.N)
	}
	if resp.HammingDistance(pend.expected) > s.Threshold(resp.N) {
		s.stats.rejected.Add(1)
		return false, [32]byte{}, nil
	}
	s.stats.accepted.Add(1)
	// Derive outside the record lock: HMAC over the whole challenge is
	// the expensive half of the transaction.
	return true, SessionKey(key, pend.ch), nil
}

// SessionKey derives the client-side session key for a challenge the
// responder just answered.
func (r *Responder) SessionKey(ch *crp.Challenge) [32]byte {
	return SessionKey(r.key, ch)
}
