package auth

import (
	"context"

	"repro/internal/crp"
	"repro/internal/stats"
)

// Threshold returns the acceptance threshold (max tolerated differing
// bits) for an n-bit response under the configured binomial model.
// Results are cached per response length: the equal-error-rate scan is
// O(n) with Lgamma per step and would otherwise dominate Verify.
func (s *Server) Threshold(n int) int {
	if t, ok := s.thresholds.Load(n); ok {
		return t.(int)
	}
	t, _, _ := stats.EqualErrorRate(n, s.cfg.PIntra, s.cfg.PInter)
	s.thresholds.Store(n, t)
	return t
}

// Verify checks a client's response against the pending challenge.
// The challenge is consumed either way — a failed attempt burns it,
// exactly like a wrong password attempt (and the no-reuse registry
// already holds its pairs).
func (s *Server) Verify(ctx context.Context, id ClientID, challengeID uint64, resp crp.Response) (bool, error) {
	if err := ctxErr(ctx, id); err != nil {
		return false, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return false, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	pend, ok := rec.pending[challengeID]
	if !ok {
		rec.mu.Unlock()
		return false, authErr(CodeUnknownChallenge, id, ErrUnknownChallenge)
	}
	delete(rec.pending, challengeID)
	rec.mu.Unlock()
	// The Hamming distance and threshold run outside the record lock;
	// pend is exclusively ours once removed from the pending map.
	if resp.N != pend.expected.N {
		s.stats.rejected.Add(1)
		return false, authErrf(CodeInvalidRequest, id, "auth: response is %d bits, want %d", resp.N, pend.expected.N)
	}
	if resp.HammingDistance(pend.expected) <= s.Threshold(resp.N) {
		s.stats.accepted.Add(1)
		return true, nil
	}
	s.stats.rejected.Add(1)
	return false, nil
}
