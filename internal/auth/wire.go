package auth

import (
	"bufio"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/crp"
)

// Wire hardening defaults. A malicious peer must not be able to pin
// server memory or goroutines: messages are size-capped, connections
// are transaction-capped, and a peer that goes silent mid-transaction
// is cut off by the idle deadline. Operators tune these through
// WireConfig; the zero config keeps these values.
const (
	// defaultMaxWireMessageBytes bounds one JSON message. The largest
	// legitimate message is a remap challenge (~640 pair bits plus
	// helper data), far under this cap.
	defaultMaxWireMessageBytes = 1 << 20
	// defaultMaxTransactionsPerConn bounds how many transactions a
	// single connection may run before the server hangs up.
	defaultMaxTransactionsPerConn = 1024
	// defaultWireIdleTimeout cuts off peers that stall mid-transaction.
	defaultWireIdleTimeout = 30 * time.Second
)

// WireConfig tunes a WireServer's hardening limits and overload
// behaviour. The zero value means "current defaults, no load
// shedding", so existing callers and tests keep today's semantics.
type WireConfig struct {
	// MaxMessageBytes caps one JSON wire message. 0 means 1 MiB.
	MaxMessageBytes int
	// MaxTransactionsPerConn caps transactions per connection before
	// the server hangs up. 0 means 1024.
	MaxTransactionsPerConn int
	// IdleTimeout cuts off peers that stall mid-transaction. 0 means
	// 30 s.
	IdleTimeout time.Duration
	// MaxInFlight caps concurrently executing transactions across all
	// connections. When the cap is reached the server answers new
	// transactions with an unavailable error instead of queueing them
	// behind a saturated store — clients back off and retry. 0
	// disables shedding.
	MaxInFlight int
	// MaxConns caps concurrently accepted connections. A connection
	// over the cap receives one unavailable error message and is
	// closed (accept-queue pressure relief). 0 disables the cap.
	MaxConns int
}

// withDefaults fills the zero fields with the documented defaults.
func (c WireConfig) withDefaults() WireConfig {
	if c.MaxMessageBytes == 0 {
		c.MaxMessageBytes = defaultMaxWireMessageBytes
	}
	if c.MaxTransactionsPerConn == 0 {
		c.MaxTransactionsPerConn = defaultMaxTransactionsPerConn
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = defaultWireIdleTimeout
	}
	return c
}

// Validate rejects nonsensical limits (negative caps or timeout).
func (c WireConfig) Validate() error {
	if c.MaxMessageBytes < 0 || c.MaxTransactionsPerConn < 0 ||
		c.IdleTimeout < 0 || c.MaxInFlight < 0 || c.MaxConns < 0 {
		return authErrf(CodeInvalidRequest, "", "auth: wire config limits must be non-negative: %+v", c)
	}
	return nil
}

// The wire protocol is newline-delimited JSON over TCP. A connection
// carries any number of sequential transactions:
//
//	authenticate:  C→S {type:"authenticate", client_id}
//	               S→C {type:"challenge", challenge} | {type:"error"}
//	               C→S {type:"response", challenge_id, response}
//	               S→C {type:"verdict", accepted}
//	remap:         C→S {type:"remap", client_id}
//	               S→C {type:"remap_challenge", request} | {type:"error"}
//	               C→S {type:"remap_done", success}
//	               S→C {type:"remap_ack"}
//
// Error messages carry the structured taxonomy alongside the text:
// error_code is the stable ErrorCode and error_client the client the
// failure concerned, so WireClient rebuilds the same typed *AuthError
// an in-process caller would get (errors.Is against the package
// sentinels holds on both sides of the wire).
//
// The paper has the server initiate remaps; over a client-polled TCP
// transport the client asks on the server's behalf, which changes no
// security property (the server still controls the reserved-voltage
// challenge and the helper data).

type wireMsg struct {
	Type        string         `json:"type"`
	ClientID    string         `json:"client_id,omitempty"`
	Challenge   *crp.Challenge `json:"challenge,omitempty"`
	ChallengeID uint64         `json:"challenge_id,omitempty"`
	Response    *crp.Response  `json:"response,omitempty"`
	Accepted    bool           `json:"accepted,omitempty"`
	Remap       *RemapRequest  `json:"remap,omitempty"`
	Success     bool           `json:"success,omitempty"`
	// Confirm carries HMAC(sessionKey, "confirm") on accepted
	// verdicts, proving key agreement without exposing the key.
	Confirm string `json:"confirm,omitempty"`
	// RemapAdvised tells the client to run a key-update transaction
	// soon (Section 6.7 mitigation policy).
	RemapAdvised bool   `json:"remap_advised,omitempty"`
	Error        string `json:"error,omitempty"`
	// ErrorCode/ErrorClient carry the typed-error taxonomy with an
	// error message; empty on messages from pre-taxonomy servers.
	ErrorCode   string `json:"error_code,omitempty"`
	ErrorClient string `json:"error_client,omitempty"`
}

// WireServer exposes a Server over TCP.
type WireServer struct {
	auth *Server
	cfg  WireConfig
	// inflight is the transaction-shedding semaphore (nil when
	// MaxInFlight is 0): a slot is held for the duration of one
	// transaction, and a transaction that cannot take a slot without
	// blocking is answered with unavailable.
	inflight chan struct{}

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewWireServer wraps an authentication server with the default
// hardening limits and no load shedding.
func NewWireServer(auth *Server) *WireServer {
	ws, err := NewWireServerConfig(auth, WireConfig{})
	if err != nil {
		// The zero config always validates.
		panic(err)
	}
	return ws
}

// NewWireServerConfig wraps an authentication server with explicit
// wire limits and overload behaviour.
func NewWireServerConfig(auth *Server, cfg WireConfig) (*WireServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws := &WireServer{auth: auth, cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}
	if ws.cfg.MaxInFlight > 0 {
		ws.inflight = make(chan struct{}, ws.cfg.MaxInFlight)
	}
	return ws, nil
}

// Serve accepts connections on l until Close is called or ctx is
// cancelled, then returns nil. ctx also bounds every authentication
// operation run on behalf of connected peers.
func (ws *WireServer) Serve(ctx context.Context, l net.Listener) error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return authErrf(CodeInvalidRequest, "", "auth: server closed")
	}
	ws.listener = l
	ws.mu.Unlock()
	// Cancelling ctx unblocks Accept by closing the listener.
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	for {
		conn, err := l.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed || ctx.Err() != nil {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		over := ws.cfg.MaxConns > 0 && len(ws.conns) >= ws.cfg.MaxConns
		if !over {
			ws.conns[conn] = struct{}{}
		}
		ws.mu.Unlock()
		if over {
			// Accept-queue pressure: tell the peer to back off, then
			// hang up. The write is deadline-bounded so a dead peer
			// cannot stall the accept loop.
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			sendErr(json.NewEncoder(conn), authErrf(CodeUnavailable, "",
				"%w: connection cap %d reached", ErrUnavailable, ws.cfg.MaxConns))
			conn.Close()
			continue
		}
		ws.wg.Add(1)
		go func() {
			defer ws.wg.Done()
			defer func() {
				conn.Close()
				ws.mu.Lock()
				delete(ws.conns, conn)
				ws.mu.Unlock()
			}()
			ws.handle(ctx, conn)
		}()
	}
}

// Close stops the listener and tears down open connections.
func (ws *WireServer) Close() {
	ws.mu.Lock()
	ws.closed = true
	if ws.listener != nil {
		ws.listener.Close()
	}
	for c := range ws.conns {
		c.Close()
	}
	ws.mu.Unlock()
	ws.wg.Wait()
}

// msgReader reads size-capped, deadline-guarded, newline-delimited
// JSON messages from a connection.
type msgReader struct {
	conn     net.Conn
	buf      *bufio.Reader
	maxBytes int
	idle     time.Duration
}

func newMsgReader(conn net.Conn, cfg WireConfig) *msgReader {
	return &msgReader{
		conn:     conn,
		buf:      bufio.NewReaderSize(conn, 32<<10),
		maxBytes: cfg.MaxMessageBytes,
		idle:     cfg.IdleTimeout,
	}
}

// next decodes one message, enforcing the idle deadline and size cap.
func (mr *msgReader) next(msg *wireMsg) error {
	if err := mr.conn.SetReadDeadline(time.Now().Add(mr.idle)); err != nil {
		return err
	}
	var line []byte
	for {
		chunk, err := mr.buf.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > mr.maxBytes {
			return authErrf(CodeInvalidRequest, "", "auth: wire message exceeds %d bytes", mr.maxBytes)
		}
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
	return json.Unmarshal(line, msg)
}

// acquire takes an in-flight transaction slot without blocking. It
// returns a release func, or nil when the server is at capacity and
// the transaction must be shed.
func (ws *WireServer) acquire() func() {
	if ws.inflight == nil {
		return func() {}
	}
	select {
	case ws.inflight <- struct{}{}:
		//lint:ignore goroleak semaphore release: the paired send above deposited a token, so this receive can never block
		return func() { <-ws.inflight }
	default:
		return nil
	}
}

func (ws *WireServer) handle(ctx context.Context, conn net.Conn) {
	mr := newMsgReader(conn, ws.cfg)
	enc := json.NewEncoder(conn)
	for tx := 0; tx < ws.cfg.MaxTransactionsPerConn; tx++ {
		var msg wireMsg
		if err := mr.next(&msg); err != nil {
			return // EOF, timeout, oversized, or broken peer: drop
		}
		release := ws.acquire()
		if release == nil {
			// Shedding: the peer's request was well-formed, so answer
			// with unavailable and keep the connection — the client
			// backs off and retries instead of redialling into the
			// accept queue.
			sendErr(enc, authErrf(CodeUnavailable, ClientID(msg.ClientID),
				"%w: in-flight transaction cap %d reached", ErrUnavailable, ws.cfg.MaxInFlight))
			continue
		}
		ok := ws.dispatch(ctx, mr, enc, msg)
		release()
		if !ok {
			return
		}
	}
}

// dispatch runs one transaction; false tears the connection down.
func (ws *WireServer) dispatch(ctx context.Context, mr *msgReader, enc *json.Encoder, msg wireMsg) bool {
	switch msg.Type {
	case "authenticate":
		ws.handleAuthenticate(ctx, mr, enc, msg)
	case "remap":
		ws.handleRemap(ctx, mr, enc, msg)
	default:
		sendErr(enc, authErrf(CodeInvalidRequest, "", "unknown message type %q", msg.Type))
		return false
	}
	return true
}

// sendErr reports a failure to the peer, carrying the typed taxonomy
// so the remote client reconstructs the same *AuthError.
func sendErr(enc *json.Encoder, err error) {
	m := wireMsg{Type: "error", Error: err.Error(), ErrorCode: string(CodeOf(err))}
	var ae *AuthError
	if errors.As(err, &ae) {
		m.ErrorClient = string(ae.ClientID)
		if ae.Err != nil {
			// Send the cause text: the receiving side re-wraps it in an
			// AuthError, which re-attaches the structured suffix.
			m.Error = ae.Err.Error()
		}
	}
	enc.Encode(m)
}

func (ws *WireServer) handleAuthenticate(ctx context.Context, mr *msgReader, enc *json.Encoder, msg wireMsg) {
	ch, err := ws.auth.IssueChallenge(ctx, ClientID(msg.ClientID))
	if err != nil {
		sendErr(enc, err)
		return
	}
	if err := enc.Encode(wireMsg{Type: "challenge", Challenge: ch}); err != nil {
		return
	}
	var respMsg wireMsg
	if err := mr.next(&respMsg); err != nil {
		return
	}
	if respMsg.Type != "response" || respMsg.Response == nil {
		sendErr(enc, authErrf(CodeInvalidRequest, ClientID(msg.ClientID), "expected response, got %q", respMsg.Type))
		return
	}
	ok, sessionKey, err := ws.auth.VerifySession(ctx, ClientID(msg.ClientID), respMsg.ChallengeID, *respMsg.Response)
	if err != nil {
		sendErr(enc, err)
		return
	}
	verdict := wireMsg{Type: "verdict", Accepted: ok}
	if ok {
		verdict.Confirm = confirmTag(sessionKey)
		verdict.RemapAdvised = ws.auth.NeedsRemap(ClientID(msg.ClientID))
	}
	enc.Encode(verdict)
}

func (ws *WireServer) handleRemap(ctx context.Context, mr *msgReader, enc *json.Encoder, msg wireMsg) {
	req, err := ws.auth.BeginRemap(ctx, ClientID(msg.ClientID))
	if err != nil {
		sendErr(enc, err)
		return
	}
	if err := enc.Encode(wireMsg{Type: "remap_challenge", Remap: req}); err != nil {
		return
	}
	var done wireMsg
	if err := mr.next(&done); err != nil {
		return
	}
	if done.Type != "remap_done" {
		sendErr(enc, authErrf(CodeInvalidRequest, ClientID(msg.ClientID), "expected remap_done, got %q", done.Type))
		return
	}
	if err := ws.auth.CompleteRemap(ctx, ClientID(msg.ClientID), done.Success); err != nil {
		sendErr(enc, err)
		return
	}
	enc.Encode(wireMsg{Type: "remap_ack"})
}

// WireClient is the client side of the TCP transport.
type WireClient struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a WireServer. ctx bounds the connection attempt
// only; pass a context to each transaction to bound the transaction.
func Dial(ctx context.Context, addr string) (*WireClient, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewWireClient(conn), nil
}

// NewWireClient wraps an already-established connection (fault
// injection wraps conns here); Dial is the production path.
func NewWireClient(conn net.Conn) *WireClient {
	return &WireClient{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}
}

// Close releases the connection.
func (wc *WireClient) Close() error { return wc.conn.Close() }

// armCtx attaches ctx to the connection for the duration of one
// transaction: the context deadline becomes the I/O deadline, and
// cancellation mid-transaction unblocks any in-flight read or write by
// forcing the deadline into the past. The returned release must be
// called when the transaction ends.
func (wc *WireClient) armCtx(ctx context.Context) (release func(), err error) {
	if err := ctxErr(ctx, ""); err != nil {
		return nil, err
	}
	deadline := time.Time{}
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	if err := wc.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() {
		wc.conn.SetDeadline(time.Unix(1, 0))
	})
	return func() { stop() }, nil
}

// ioErr converts a transport failure during a context-bound
// transaction into the typed taxonomy when the context caused it.
func ioErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return &AuthError{Code: CodeCanceled, Err: cerr}
	}
	// armCtx mirrors the context deadline onto the connection, so a
	// transport timeout during an armed transaction is the context
	// expiring — the net timer can fire a beat before the context's
	// own timer does.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if _, ok := ctx.Deadline(); ok {
			return &AuthError{Code: CodeCanceled, Err: context.DeadlineExceeded}
		}
	}
	return err
}

func (wc *WireClient) recv() (wireMsg, error) {
	var msg wireMsg
	if err := wc.dec.Decode(&msg); err != nil {
		if errors.Is(err, io.EOF) {
			// A clean close mid-transaction is a transport loss, not a
			// protocol verdict: the transaction never completed, so it
			// is safe (and correct) to retry on a fresh connection. The
			// EOF stays in the chain so retry loops know this
			// connection is gone (unlike a shed response, which leaves
			// it healthy).
			return msg, authErrf(CodeUnavailable, "", "%w: server closed connection: %w", ErrUnavailable, io.EOF)
		}
		return msg, err
	}
	if msg.Type == "error" {
		return msg, errorFromWire(ErrorCode(msg.ErrorCode), ClientID(msg.ErrorClient), msg.Error)
	}
	return msg, nil
}

// confirmTag derives the non-secret key-confirmation value exchanged
// on the wire: HMAC(sessionKey, "confirm"), hex encoded.
func confirmTag(sessionKey [32]byte) string {
	mac := hmac.New(sha256.New, sessionKey[:])
	mac.Write([]byte("authenticache/session/confirm"))
	return hex.EncodeToString(mac.Sum(nil))
}

// Authenticate runs one full authentication transaction for the
// responder and returns the server's verdict.
func (wc *WireClient) Authenticate(ctx context.Context, r *Responder) (bool, error) {
	ok, _, err := wc.AuthenticateSession(ctx, r)
	return ok, err
}

// AuthenticateSession authenticates and, on acceptance, returns the
// established per-transaction session key. The server's verdict
// carries a key-confirmation tag; a verdict whose tag does not match
// the locally derived key is treated as a protocol failure (a
// tampering or desynchronisation signal).
func (wc *WireClient) AuthenticateSession(ctx context.Context, r *Responder) (bool, [32]byte, error) {
	var zero [32]byte
	release, err := wc.armCtx(ctx)
	if err != nil {
		return false, zero, err
	}
	defer release()
	if err := wc.enc.Encode(wireMsg{Type: "authenticate", ClientID: string(r.ID)}); err != nil {
		return false, zero, ioErr(ctx, err)
	}
	msg, err := wc.recv()
	if err != nil {
		return false, zero, ioErr(ctx, err)
	}
	if msg.Type != "challenge" || msg.Challenge == nil {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: expected challenge, got %q", msg.Type)
	}
	resp, err := r.Respond(msg.Challenge)
	if err != nil {
		return false, zero, err
	}
	if err := wc.enc.Encode(wireMsg{
		Type:        "response",
		ChallengeID: msg.Challenge.ID,
		Response:    &resp,
	}); err != nil {
		return false, zero, ioErr(ctx, err)
	}
	verdict, err := wc.recv()
	if err != nil {
		return false, zero, ioErr(ctx, err)
	}
	if verdict.Type != "verdict" {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: expected verdict, got %q", verdict.Type)
	}
	if !verdict.Accepted {
		return false, zero, nil
	}
	sessionKey := r.SessionKey(msg.Challenge)
	if verdict.Confirm != confirmTag(sessionKey) {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: session key confirmation mismatch")
	}
	if verdict.RemapAdvised {
		// The server says the CRP budget under this key is spent; run
		// the key-update transaction immediately so the next
		// authentication uses a fresh logical map.
		if err := wc.remapArmed(ctx, r); err != nil {
			return true, sessionKey, fmt.Errorf("auth: advised remap failed: %w", err)
		}
	}
	return true, sessionKey, nil
}

// Remap runs one key-update transaction, rotating the responder's key
// on success.
func (wc *WireClient) Remap(ctx context.Context, r *Responder) error {
	release, err := wc.armCtx(ctx)
	if err != nil {
		return err
	}
	defer release()
	return wc.remapArmed(ctx, r)
}

// remapArmed runs the remap transaction on a connection whose context
// is already armed.
func (wc *WireClient) remapArmed(ctx context.Context, r *Responder) error {
	if err := wc.enc.Encode(wireMsg{Type: "remap", ClientID: string(r.ID)}); err != nil {
		return ioErr(ctx, err)
	}
	msg, err := wc.recv()
	if err != nil {
		return ioErr(ctx, err)
	}
	if msg.Type != "remap_challenge" || msg.Remap == nil {
		return authErrf(CodeInvalidRequest, "", "auth: expected remap_challenge, got %q", msg.Type)
	}
	success := r.HandleRemap(msg.Remap) == nil
	if err := wc.enc.Encode(wireMsg{Type: "remap_done", Success: success}); err != nil {
		return ioErr(ctx, err)
	}
	ack, err := wc.recv()
	if err != nil {
		return ioErr(ctx, err)
	}
	if ack.Type != "remap_ack" {
		return authErrf(CodeInvalidRequest, "", "auth: expected remap_ack, got %q", ack.Type)
	}
	if !success {
		return authErrf(CodeInternal, "", "auth: client failed to derive the new key")
	}
	return nil
}
