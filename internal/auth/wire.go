package auth

import (
	"bufio"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/crp"
	"repro/internal/wire"
)

// Wire hardening defaults. A malicious peer must not be able to pin
// server memory or goroutines: messages are size-capped, connections
// are transaction-capped, and a peer that goes silent mid-transaction
// is cut off by the idle deadline. Operators tune these through
// WireConfig; the zero config keeps these values.
const (
	// defaultMaxWireMessageBytes bounds one JSON message. The largest
	// legitimate message is a remap challenge (~640 pair bits plus
	// helper data), far under this cap.
	defaultMaxWireMessageBytes = 1 << 20
	// defaultMaxTransactionsPerConn bounds how many transactions a
	// single connection may run before the server hangs up.
	defaultMaxTransactionsPerConn = 1024
	// defaultWireIdleTimeout cuts off peers that stall mid-transaction.
	defaultWireIdleTimeout = 30 * time.Second
	// defaultMaxStreamsPerConn bounds concurrently open v2 streams on
	// one connection (the per-connection pipelining depth the server
	// will serve). v1 connections are lock-step and unaffected.
	defaultMaxStreamsPerConn = 64
)

// Proto selects the connection framing.
type Proto int

const (
	// ProtoAuto negotiates per connection: a v2 preamble selects the
	// binary framing, any other first byte falls back to
	// newline-delimited JSON (v1). This is the zero value, so existing
	// servers keep accepting v1 clients unchanged.
	ProtoAuto Proto = iota
	// ProtoV1 forces the newline-delimited JSON framing.
	ProtoV1
	// ProtoV2 requires the binary framing; a peer that does not open
	// with the v2 preamble receives one typed v1 error message and is
	// disconnected.
	ProtoV2
)

// String names the protocol selection.
func (p Proto) String() string {
	switch p {
	case ProtoAuto:
		return "auto"
	case ProtoV1:
		return "v1"
	case ProtoV2:
		return "v2"
	}
	return fmt.Sprintf("auth.Proto(%d)", int(p))
}

// ParseProto maps the flag spellings "auto", "v1", "v2" to a Proto.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "auto", "":
		return ProtoAuto, nil
	case "v1":
		return ProtoV1, nil
	case "v2":
		return ProtoV2, nil
	}
	return ProtoAuto, authErrf(CodeInvalidRequest, "", "auth: unknown wire protocol %q (want auto, v1, or v2)", s)
}

// WireConfig tunes a WireServer's hardening limits and overload
// behaviour. The zero value means "current defaults, no load
// shedding", so existing callers and tests keep today's semantics.
type WireConfig struct {
	// MaxMessageBytes caps one JSON wire message. 0 means 1 MiB.
	MaxMessageBytes int
	// MaxTransactionsPerConn caps transactions per connection before
	// the server hangs up. 0 means 1024.
	MaxTransactionsPerConn int
	// IdleTimeout cuts off peers that stall mid-transaction. 0 means
	// 30 s.
	IdleTimeout time.Duration
	// MaxInFlight caps concurrently executing transactions across all
	// connections. When the cap is reached the server answers new
	// transactions with an unavailable error instead of queueing them
	// behind a saturated store — clients back off and retry. 0
	// disables shedding.
	MaxInFlight int
	// MaxConns caps concurrently accepted connections. A connection
	// over the cap receives one unavailable error message and is
	// closed (accept-queue pressure relief). 0 disables the cap.
	MaxConns int
	// Proto selects the accepted framing: negotiate (ProtoAuto, the
	// zero value), JSON only (ProtoV1), or binary only (ProtoV2).
	Proto Proto
	// MaxStreamsPerConn caps concurrently open v2 streams per
	// connection; a stream over the cap is shed with an unavailable
	// error on that stream while the connection stays healthy. 0
	// means 64.
	MaxStreamsPerConn int
}

// withDefaults fills the zero fields with the documented defaults.
func (c WireConfig) withDefaults() WireConfig {
	if c.MaxMessageBytes == 0 {
		c.MaxMessageBytes = defaultMaxWireMessageBytes
	}
	if c.MaxTransactionsPerConn == 0 {
		c.MaxTransactionsPerConn = defaultMaxTransactionsPerConn
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = defaultWireIdleTimeout
	}
	if c.MaxStreamsPerConn == 0 {
		c.MaxStreamsPerConn = defaultMaxStreamsPerConn
	}
	return c
}

// Validate rejects nonsensical limits (negative caps or timeout).
func (c WireConfig) Validate() error {
	if c.MaxMessageBytes < 0 || c.MaxTransactionsPerConn < 0 ||
		c.IdleTimeout < 0 || c.MaxInFlight < 0 || c.MaxConns < 0 ||
		c.MaxStreamsPerConn < 0 {
		return authErrf(CodeInvalidRequest, "", "auth: wire config limits must be non-negative: %+v", c)
	}
	if c.Proto < ProtoAuto || c.Proto > ProtoV2 {
		return authErrf(CodeInvalidRequest, "", "auth: unknown wire protocol selection %d", int(c.Proto))
	}
	return nil
}

// The wire protocol is newline-delimited JSON over TCP. A connection
// carries any number of sequential transactions:
//
//	authenticate:  C→S {type:"authenticate", client_id}
//	               S→C {type:"challenge", challenge} | {type:"error"}
//	               C→S {type:"response", challenge_id, response}
//	               S→C {type:"verdict", accepted}
//	remap:         C→S {type:"remap", client_id}
//	               S→C {type:"remap_challenge", request} | {type:"error"}
//	               C→S {type:"remap_done", success}
//	               S→C {type:"remap_ack"}
//
// Error messages carry the structured taxonomy alongside the text:
// error_code is the stable ErrorCode and error_client the client the
// failure concerned, so WireClient rebuilds the same typed *AuthError
// an in-process caller would get (errors.Is against the package
// sentinels holds on both sides of the wire).
//
// The paper has the server initiate remaps; over a client-polled TCP
// transport the client asks on the server's behalf, which changes no
// security property (the server still controls the reserved-voltage
// challenge and the helper data).

type wireMsg struct {
	Type        string         `json:"type"`
	ClientID    string         `json:"client_id,omitempty"`
	Challenge   *crp.Challenge `json:"challenge,omitempty"`
	ChallengeID uint64         `json:"challenge_id,omitempty"`
	Response    *crp.Response  `json:"response,omitempty"`
	Accepted    bool           `json:"accepted,omitempty"`
	Remap       *RemapRequest  `json:"remap,omitempty"`
	Success     bool           `json:"success,omitempty"`
	// Confirm carries HMAC(sessionKey, "confirm") on accepted
	// verdicts, proving key agreement without exposing the key.
	Confirm string `json:"confirm,omitempty"`
	// RemapAdvised tells the client to run a key-update transaction
	// soon (Section 6.7 mitigation policy).
	RemapAdvised bool   `json:"remap_advised,omitempty"`
	Error        string `json:"error,omitempty"`
	// ErrorCode/ErrorClient carry the typed-error taxonomy with an
	// error message; empty on messages from pre-taxonomy servers.
	ErrorCode   string `json:"error_code,omitempty"`
	ErrorClient string `json:"error_client,omitempty"`
}

// WireServer exposes a transaction backend — usually an in-process
// Server, in a cluster possibly a forwarding router — over TCP.
type WireServer struct {
	backend TxBackend
	cfg     WireConfig
	// inflight is the transaction-shedding semaphore (nil when
	// MaxInFlight is 0): a slot is held for the duration of one
	// transaction, and a transaction that cannot take a slot without
	// blocking is answered with unavailable.
	inflight chan struct{}

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewWireServer wraps an authentication server with the default
// hardening limits and no load shedding.
func NewWireServer(auth *Server) *WireServer {
	ws, err := NewWireServerConfig(auth, WireConfig{})
	if err != nil {
		// The zero config always validates.
		panic(err)
	}
	return ws
}

// NewWireServerConfig wraps an authentication server with explicit
// wire limits and overload behaviour.
func NewWireServerConfig(auth *Server, cfg WireConfig) (*WireServer, error) {
	return NewWireServerBackend(localBackend{auth: auth}, cfg)
}

// NewWireServerBackend wraps an arbitrary transaction backend (a
// cluster router, a follower's delegating issuer) with the same wire
// front end a plain Server gets: both framings, hardening limits, and
// overload shedding all apply unchanged.
func NewWireServerBackend(backend TxBackend, cfg WireConfig) (*WireServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws := &WireServer{backend: backend, cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}
	if ws.cfg.MaxInFlight > 0 {
		ws.inflight = make(chan struct{}, ws.cfg.MaxInFlight)
	}
	return ws, nil
}

// Serve accepts connections on l until Close is called or ctx is
// cancelled, then returns nil. ctx also bounds every authentication
// operation run on behalf of connected peers.
func (ws *WireServer) Serve(ctx context.Context, l net.Listener) error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return authErrf(CodeInvalidRequest, "", "auth: server closed")
	}
	ws.listener = l
	ws.mu.Unlock()
	// Cancelling ctx unblocks Accept by closing the listener.
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	for {
		conn, err := l.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed || ctx.Err() != nil {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		over := ws.cfg.MaxConns > 0 && len(ws.conns) >= ws.cfg.MaxConns
		if !over {
			ws.conns[conn] = struct{}{}
		}
		ws.mu.Unlock()
		if over {
			// Accept-queue pressure: tell the peer to back off, then
			// hang up. The write is deadline-bounded so a dead peer
			// cannot stall the accept loop.
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			// Best-effort: the connection is closed on the next line
			// whether or not the peer heard the answer.
			_ = sendErr(json.NewEncoder(conn), authErrf(CodeUnavailable, "",
				"%w: connection cap %d reached", ErrUnavailable, ws.cfg.MaxConns))
			conn.Close()
			continue
		}
		ws.wg.Add(1)
		go func() {
			defer ws.wg.Done()
			defer func() {
				conn.Close()
				ws.mu.Lock()
				delete(ws.conns, conn)
				ws.mu.Unlock()
			}()
			ws.handle(ctx, conn)
		}()
	}
}

// Close stops the listener and tears down open connections.
func (ws *WireServer) Close() {
	ws.mu.Lock()
	ws.closed = true
	if ws.listener != nil {
		ws.listener.Close()
	}
	for c := range ws.conns {
		c.Close()
	}
	ws.mu.Unlock()
	ws.wg.Wait()
}

// msgReader reads size-capped, deadline-guarded, newline-delimited
// JSON messages from a connection.
type msgReader struct {
	conn     net.Conn
	buf      *bufio.Reader
	maxBytes int
	idle     time.Duration
}

// newMsgReader wraps an existing buffered reader so the negotiation
// sniff and the v1 loop share one buffer (bytes peeked during the
// sniff are not lost).
func newMsgReader(conn net.Conn, br *bufio.Reader, cfg WireConfig) *msgReader {
	return &msgReader{
		conn:     conn,
		buf:      br,
		maxBytes: cfg.MaxMessageBytes,
		idle:     cfg.IdleTimeout,
	}
}

// next decodes one message, enforcing the idle deadline and size cap.
func (mr *msgReader) next(msg *wireMsg) error {
	if err := mr.conn.SetReadDeadline(time.Now().Add(mr.idle)); err != nil {
		return err
	}
	var line []byte
	for {
		chunk, err := mr.buf.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > mr.maxBytes {
			return authErrf(CodeInvalidRequest, "", "auth: wire message exceeds %d bytes", mr.maxBytes)
		}
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
	return json.Unmarshal(line, msg)
}

// acquire takes an in-flight transaction slot without blocking. It
// returns a release func, or nil when the server is at capacity and
// the transaction must be shed.
func (ws *WireServer) acquire() func() {
	if ws.inflight == nil {
		return func() {}
	}
	select {
	case ws.inflight <- struct{}{}:
		//lint:ignore goroleak semaphore release: the paired send above deposited a token, so this receive can never block
		return func() { <-ws.inflight }
	default:
		return nil
	}
}

// handle negotiates the framing and runs the connection to
// completion. Under ProtoAuto the first bytes decide: the v2 preamble
// selects the binary demultiplexer, anything else the v1 JSON loop.
func (ws *WireServer) handle(ctx context.Context, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 32<<10)
	proto, err := ws.sniff(conn, br)
	if err != nil {
		return
	}
	if proto == ProtoV2 {
		ws.handleV2(ctx, conn, br)
		return
	}
	ws.handleV1(ctx, conn, br)
}

// sniff decides the framing of one connection. It consumes the v2
// preamble when present and nothing otherwise.
func (ws *WireServer) sniff(conn net.Conn, br *bufio.Reader) (Proto, error) {
	if ws.cfg.Proto == ProtoV1 {
		return ProtoV1, nil
	}
	if err := conn.SetReadDeadline(time.Now().Add(ws.cfg.IdleTimeout)); err != nil {
		return ProtoV1, err
	}
	pre := wire.Preamble()
	head, err := br.Peek(wire.PreambleLen)
	if len(head) > 0 && head[0] != pre[0] {
		// 0xA7 never begins JSON, so any other first byte is a v1
		// peer (possibly a short one that EOFed before 4 bytes).
		if ws.cfg.Proto == ProtoV2 {
			// The server speaks only v2; answer in the framing the
			// peer evidently expects, then hang up.
			conn.SetWriteDeadline(time.Now().Add(ws.cfg.IdleTimeout))
			_ = sendErr(json.NewEncoder(conn), authErrf(CodeInvalidRequest, "",
				"auth: server requires wire protocol v2"))
			return ProtoV1, authErrf(CodeInvalidRequest, "", "auth: v1 peer on a v2-only server")
		}
		return ProtoV1, nil
	}
	if err != nil {
		return ProtoV1, err
	}
	if [wire.PreambleLen]byte(head) != pre {
		// Starts with the magic byte but is not the preamble: framing
		// garbage we cannot answer in any known framing.
		return ProtoV1, authErrf(CodeInvalidRequest, "", "auth: bad v2 preamble")
	}
	br.Discard(wire.PreambleLen)
	return ProtoV2, nil
}

// handleV1 runs the lock-step newline-JSON transaction loop.
func (ws *WireServer) handleV1(ctx context.Context, conn net.Conn, br *bufio.Reader) {
	mr := newMsgReader(conn, br, ws.cfg)
	enc := json.NewEncoder(conn)
	for tx := 0; tx < ws.cfg.MaxTransactionsPerConn; tx++ {
		var msg wireMsg
		if err := mr.next(&msg); err != nil {
			return // EOF, timeout, oversized, or broken peer: drop
		}
		release := ws.acquire()
		if release == nil {
			// Shedding: the peer's request was well-formed, so answer
			// with unavailable and keep the connection — the client
			// backs off and retries instead of redialling into the
			// accept queue.
			if err := sendErr(enc, authErrf(CodeUnavailable, ClientID(msg.ClientID),
				"%w: in-flight transaction cap %d reached", ErrUnavailable, ws.cfg.MaxInFlight)); err != nil {
				return // write failed: the peer is gone
			}
			continue
		}
		err := ws.dispatch(ctx, mr, enc, msg)
		release()
		if err != nil {
			return
		}
	}
}

// dispatch runs one transaction; a non-nil error tears the connection
// down (broken peer, failed write, or protocol confusion).
func (ws *WireServer) dispatch(ctx context.Context, mr *msgReader, enc *json.Encoder, msg wireMsg) error {
	switch msg.Type {
	case "authenticate":
		return ws.handleAuthenticate(ctx, mr, enc, msg)
	case "remap":
		return ws.handleRemap(ctx, mr, enc, msg)
	default:
		werr := authErrf(CodeInvalidRequest, "", "unknown message type %q", msg.Type)
		if err := sendErr(enc, werr); err != nil {
			return err
		}
		return werr
	}
}

// sendErr reports a failure to the peer, carrying the typed taxonomy
// so the remote client reconstructs the same *AuthError. The returned
// error is the transport write failure, if any — callers tear the
// connection down on it rather than silently continuing against a
// peer that can no longer hear us.
func sendErr(enc *json.Encoder, err error) error {
	m := wireMsg{Type: "error", Error: err.Error(), ErrorCode: string(CodeOf(err))}
	var ae *AuthError
	if errors.As(err, &ae) {
		m.ErrorClient = string(ae.ClientID)
		if ae.Err != nil {
			// Send the cause text: the receiving side re-wraps it in an
			// AuthError, which re-attaches the structured suffix.
			m.Error = ae.Err.Error()
		}
	}
	return enc.Encode(m)
}

// handleAuthenticate runs one v1 authentication transaction. A
// non-nil return means the connection is no longer usable; protocol
// failures answered in-band return nil.
func (ws *WireServer) handleAuthenticate(ctx context.Context, mr *msgReader, enc *json.Encoder, msg wireMsg) error {
	ch, err := ws.backend.BeginAuth(ctx, ClientID(msg.ClientID))
	if err != nil {
		return sendErr(enc, err)
	}
	if err := enc.Encode(wireMsg{Type: "challenge", Challenge: ch}); err != nil {
		return err
	}
	var respMsg wireMsg
	if err := mr.next(&respMsg); err != nil {
		return err
	}
	if respMsg.Type != "response" || respMsg.Response == nil {
		return sendErr(enc, authErrf(CodeInvalidRequest, ClientID(msg.ClientID), "expected response, got %q", respMsg.Type))
	}
	v, err := ws.backend.FinishAuth(ctx, ClientID(msg.ClientID), respMsg.ChallengeID, *respMsg.Response)
	if err != nil {
		return sendErr(enc, err)
	}
	verdict := wireMsg{Type: "verdict", Accepted: v.Accepted, RemapAdvised: v.RemapAdvised}
	if v.HasConfirm {
		verdict.Confirm = hex.EncodeToString(v.Confirm[:])
	}
	return enc.Encode(verdict)
}

// handleRemap runs one v1 key-update transaction; error semantics as
// handleAuthenticate.
func (ws *WireServer) handleRemap(ctx context.Context, mr *msgReader, enc *json.Encoder, msg wireMsg) error {
	req, err := ws.backend.BeginRemapTx(ctx, ClientID(msg.ClientID))
	if err != nil {
		return sendErr(enc, err)
	}
	if err := enc.Encode(wireMsg{Type: "remap_challenge", Remap: req}); err != nil {
		return err
	}
	var done wireMsg
	if err := mr.next(&done); err != nil {
		return err
	}
	if done.Type != "remap_done" {
		return sendErr(enc, authErrf(CodeInvalidRequest, ClientID(msg.ClientID), "expected remap_done, got %q", done.Type))
	}
	if err := ws.backend.FinishRemapTx(ctx, ClientID(msg.ClientID), done.Success); err != nil {
		return sendErr(enc, err)
	}
	return enc.Encode(wireMsg{Type: "remap_ack"})
}

// WireClient is the client side of the TCP transport. A v1 client
// (Dial, NewWireClient) runs lock-step transactions and is not safe
// for concurrent use. A v2 client (DialV2, NewWireClientV2) speaks
// the binary framing and pipelines: concurrent callers each get
// their own stream on the shared connection.
type WireClient struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	// c2 is the binary-framing engine; nil on v1 clients. Methods
	// dispatch on it.
	c2 *clientV2
}

// Dial connects to a WireServer speaking v1. ctx bounds the
// connection attempt only; pass a context to each transaction to
// bound the transaction.
func Dial(ctx context.Context, addr string) (*WireClient, error) {
	return DialProto(ctx, addr, ProtoV1)
}

// DialV2 connects speaking the v2 binary framing (the server must be
// ProtoAuto or ProtoV2).
func DialV2(ctx context.Context, addr string) (*WireClient, error) {
	return DialProto(ctx, addr, ProtoV2)
}

// DialProto connects with an explicit framing choice. ProtoAuto
// means v1 on the client side: the server is the negotiating party.
func DialProto(ctx context.Context, addr string, proto Proto) (*WireClient, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if proto == ProtoV2 {
		return NewWireClientV2(conn)
	}
	return NewWireClient(conn), nil
}

// NewWireClient wraps an already-established connection (fault
// injection wraps conns here); Dial is the production path.
func NewWireClient(conn net.Conn) *WireClient {
	return &WireClient{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}
}

// NewWireClientV2 wraps an already-established connection with the
// binary framing, writing the v2 preamble immediately.
func NewWireClientV2(conn net.Conn) (*WireClient, error) {
	c2, err := newClientV2(conn)
	if err != nil {
		return nil, err
	}
	return &WireClient{conn: conn, c2: c2}, nil
}

// Close releases the connection.
func (wc *WireClient) Close() error {
	if wc.c2 != nil {
		return wc.c2.close()
	}
	return wc.conn.Close()
}

// armCtx attaches ctx to the connection for the duration of one
// transaction: the context deadline becomes the I/O deadline, and
// cancellation mid-transaction unblocks any in-flight read or write by
// forcing the deadline into the past. The returned release must be
// called when the transaction ends.
func (wc *WireClient) armCtx(ctx context.Context) (release func(), err error) {
	if err := ctxErr(ctx, ""); err != nil {
		return nil, err
	}
	deadline := time.Time{}
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	if err := wc.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() {
		wc.conn.SetDeadline(time.Unix(1, 0))
	})
	return func() { stop() }, nil
}

// ioErr converts a transport failure during a context-bound
// transaction into the typed taxonomy when the context caused it.
func ioErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return &AuthError{Code: CodeCanceled, Err: cerr}
	}
	// armCtx mirrors the context deadline onto the connection, so a
	// transport timeout during an armed transaction is the context
	// expiring — the net timer can fire a beat before the context's
	// own timer does.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if _, ok := ctx.Deadline(); ok {
			return &AuthError{Code: CodeCanceled, Err: context.DeadlineExceeded}
		}
	}
	return err
}

func (wc *WireClient) recv() (wireMsg, error) {
	var msg wireMsg
	if err := wc.dec.Decode(&msg); err != nil {
		if errors.Is(err, io.EOF) {
			// A clean close mid-transaction is a transport loss, not a
			// protocol verdict: the transaction never completed, so it
			// is safe (and correct) to retry on a fresh connection. The
			// EOF stays in the chain so retry loops know this
			// connection is gone (unlike a shed response, which leaves
			// it healthy).
			return msg, authErrf(CodeUnavailable, "", "%w: server closed connection: %w", ErrUnavailable, io.EOF)
		}
		return msg, err
	}
	if msg.Type == "error" {
		return msg, errorFromWire(ErrorCode(msg.ErrorCode), ClientID(msg.ErrorClient), msg.Error)
	}
	return msg, nil
}

// confirmTagRaw derives the non-secret key-confirmation value
// exchanged on the wire: HMAC(sessionKey, "confirm"). The v2 framing
// carries it raw; v1 hex-encodes it (confirmTag).
func confirmTagRaw(sessionKey [32]byte) [32]byte {
	mac := hmac.New(sha256.New, sessionKey[:])
	mac.Write([]byte("authenticache/session/confirm"))
	var tag [32]byte
	mac.Sum(tag[:0])
	return tag
}

// confirmTag is confirmTagRaw hex encoded, as the v1 JSON framing
// spells it.
func confirmTag(sessionKey [32]byte) string {
	tag := confirmTagRaw(sessionKey)
	return hex.EncodeToString(tag[:])
}

// Authenticate runs one full authentication transaction for the
// responder and returns the server's verdict.
func (wc *WireClient) Authenticate(ctx context.Context, r *Responder) (bool, error) {
	ok, _, err := wc.AuthenticateSession(ctx, r)
	return ok, err
}

// AuthenticateSession authenticates and, on acceptance, returns the
// established per-transaction session key. The server's verdict
// carries a key-confirmation tag; a verdict whose tag does not match
// the locally derived key is treated as a protocol failure (a
// tampering or desynchronisation signal).
func (wc *WireClient) AuthenticateSession(ctx context.Context, r *Responder) (bool, [32]byte, error) {
	var zero [32]byte
	if wc.c2 != nil {
		return wc.c2.authenticateSession(ctx, r)
	}
	release, err := wc.armCtx(ctx)
	if err != nil {
		return false, zero, err
	}
	defer release()
	if err := wc.enc.Encode(wireMsg{Type: "authenticate", ClientID: string(r.ID)}); err != nil {
		return false, zero, ioErr(ctx, err)
	}
	msg, err := wc.recv()
	if err != nil {
		return false, zero, ioErr(ctx, err)
	}
	if msg.Type != "challenge" || msg.Challenge == nil {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: expected challenge, got %q", msg.Type)
	}
	resp, err := r.Respond(msg.Challenge)
	if err != nil {
		return false, zero, err
	}
	if err := wc.enc.Encode(wireMsg{
		Type:        "response",
		ChallengeID: msg.Challenge.ID,
		Response:    &resp,
	}); err != nil {
		return false, zero, ioErr(ctx, err)
	}
	verdict, err := wc.recv()
	if err != nil {
		return false, zero, ioErr(ctx, err)
	}
	if verdict.Type != "verdict" {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: expected verdict, got %q", verdict.Type)
	}
	if !verdict.Accepted {
		return false, zero, nil
	}
	sessionKey := r.SessionKey(msg.Challenge)
	if verdict.Confirm != confirmTag(sessionKey) {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: session key confirmation mismatch")
	}
	if verdict.RemapAdvised {
		// The server says the CRP budget under this key is spent; run
		// the key-update transaction immediately so the next
		// authentication uses a fresh logical map.
		if err := wc.remapArmed(ctx, r); err != nil {
			return true, sessionKey, fmt.Errorf("auth: advised remap failed: %w", err)
		}
	}
	return true, sessionKey, nil
}

// Remap runs one key-update transaction, rotating the responder's key
// on success.
func (wc *WireClient) Remap(ctx context.Context, r *Responder) error {
	if wc.c2 != nil {
		if err := ctxErr(ctx, ""); err != nil {
			return err
		}
		return wc.c2.remap(ctx, r)
	}
	release, err := wc.armCtx(ctx)
	if err != nil {
		return err
	}
	defer release()
	return wc.remapArmed(ctx, r)
}

// remapArmed runs the remap transaction on a connection whose context
// is already armed.
func (wc *WireClient) remapArmed(ctx context.Context, r *Responder) error {
	if err := wc.enc.Encode(wireMsg{Type: "remap", ClientID: string(r.ID)}); err != nil {
		return ioErr(ctx, err)
	}
	msg, err := wc.recv()
	if err != nil {
		return ioErr(ctx, err)
	}
	if msg.Type != "remap_challenge" || msg.Remap == nil {
		return authErrf(CodeInvalidRequest, "", "auth: expected remap_challenge, got %q", msg.Type)
	}
	success := r.HandleRemap(msg.Remap) == nil
	if err := wc.enc.Encode(wireMsg{Type: "remap_done", Success: success}); err != nil {
		return ioErr(ctx, err)
	}
	ack, err := wc.recv()
	if err != nil {
		return ioErr(ctx, err)
	}
	if ack.Type != "remap_ack" {
		return authErrf(CodeInvalidRequest, "", "auth: expected remap_ack, got %q", ack.Type)
	}
	if !success {
		return authErrf(CodeInternal, "", "auth: client failed to derive the new key")
	}
	return nil
}
