package auth

import (
	"bufio"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/crp"
)

// Wire hardening limits. A malicious peer must not be able to pin
// server memory or goroutines: messages are size-capped, connections
// are transaction-capped, and a peer that goes silent mid-transaction
// is cut off by the idle deadline.
const (
	// maxWireMessageBytes bounds one JSON message. The largest
	// legitimate message is a remap challenge (~640 pair bits plus
	// helper data), far under this cap.
	maxWireMessageBytes = 1 << 20
	// maxTransactionsPerConn bounds how many transactions a single
	// connection may run before the server hangs up.
	maxTransactionsPerConn = 1024
	// wireIdleTimeout cuts off peers that stall mid-transaction.
	wireIdleTimeout = 30 * time.Second
)

// The wire protocol is newline-delimited JSON over TCP. A connection
// carries any number of sequential transactions:
//
//	authenticate:  C→S {type:"authenticate", client_id}
//	               S→C {type:"challenge", challenge} | {type:"error"}
//	               C→S {type:"response", challenge_id, response}
//	               S→C {type:"verdict", accepted}
//	remap:         C→S {type:"remap", client_id}
//	               S→C {type:"remap_challenge", request} | {type:"error"}
//	               C→S {type:"remap_done", success}
//	               S→C {type:"remap_ack"}
//
// Error messages carry the structured taxonomy alongside the text:
// error_code is the stable ErrorCode and error_client the client the
// failure concerned, so WireClient rebuilds the same typed *AuthError
// an in-process caller would get (errors.Is against the package
// sentinels holds on both sides of the wire).
//
// The paper has the server initiate remaps; over a client-polled TCP
// transport the client asks on the server's behalf, which changes no
// security property (the server still controls the reserved-voltage
// challenge and the helper data).

type wireMsg struct {
	Type        string         `json:"type"`
	ClientID    string         `json:"client_id,omitempty"`
	Challenge   *crp.Challenge `json:"challenge,omitempty"`
	ChallengeID uint64         `json:"challenge_id,omitempty"`
	Response    *crp.Response  `json:"response,omitempty"`
	Accepted    bool           `json:"accepted,omitempty"`
	Remap       *RemapRequest  `json:"remap,omitempty"`
	Success     bool           `json:"success,omitempty"`
	// Confirm carries HMAC(sessionKey, "confirm") on accepted
	// verdicts, proving key agreement without exposing the key.
	Confirm string `json:"confirm,omitempty"`
	// RemapAdvised tells the client to run a key-update transaction
	// soon (Section 6.7 mitigation policy).
	RemapAdvised bool   `json:"remap_advised,omitempty"`
	Error        string `json:"error,omitempty"`
	// ErrorCode/ErrorClient carry the typed-error taxonomy with an
	// error message; empty on messages from pre-taxonomy servers.
	ErrorCode   string `json:"error_code,omitempty"`
	ErrorClient string `json:"error_client,omitempty"`
}

// WireServer exposes a Server over TCP.
type WireServer struct {
	auth *Server

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewWireServer wraps an authentication server.
func NewWireServer(auth *Server) *WireServer {
	return &WireServer{auth: auth, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close is called or ctx is
// cancelled, then returns nil. ctx also bounds every authentication
// operation run on behalf of connected peers.
func (ws *WireServer) Serve(ctx context.Context, l net.Listener) error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return authErrf(CodeInvalidRequest, "", "auth: server closed")
	}
	ws.listener = l
	ws.mu.Unlock()
	// Cancelling ctx unblocks Accept by closing the listener.
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	for {
		conn, err := l.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed || ctx.Err() != nil {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		ws.conns[conn] = struct{}{}
		ws.mu.Unlock()
		ws.wg.Add(1)
		go func() {
			defer ws.wg.Done()
			defer func() {
				conn.Close()
				ws.mu.Lock()
				delete(ws.conns, conn)
				ws.mu.Unlock()
			}()
			ws.handle(ctx, conn)
		}()
	}
}

// Close stops the listener and tears down open connections.
func (ws *WireServer) Close() {
	ws.mu.Lock()
	ws.closed = true
	if ws.listener != nil {
		ws.listener.Close()
	}
	for c := range ws.conns {
		c.Close()
	}
	ws.mu.Unlock()
	ws.wg.Wait()
}

// msgReader reads size-capped, deadline-guarded, newline-delimited
// JSON messages from a connection.
type msgReader struct {
	conn net.Conn
	buf  *bufio.Reader
}

func newMsgReader(conn net.Conn) *msgReader {
	return &msgReader{conn: conn, buf: bufio.NewReaderSize(conn, 32<<10)}
}

// next decodes one message, enforcing the idle deadline and size cap.
func (mr *msgReader) next(msg *wireMsg) error {
	if err := mr.conn.SetReadDeadline(time.Now().Add(wireIdleTimeout)); err != nil {
		return err
	}
	var line []byte
	for {
		chunk, err := mr.buf.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > maxWireMessageBytes {
			return authErrf(CodeInvalidRequest, "", "auth: wire message exceeds %d bytes", maxWireMessageBytes)
		}
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
	return json.Unmarshal(line, msg)
}

func (ws *WireServer) handle(ctx context.Context, conn net.Conn) {
	mr := newMsgReader(conn)
	enc := json.NewEncoder(conn)
	for tx := 0; tx < maxTransactionsPerConn; tx++ {
		var msg wireMsg
		if err := mr.next(&msg); err != nil {
			return // EOF, timeout, oversized, or broken peer: drop
		}
		switch msg.Type {
		case "authenticate":
			ws.handleAuthenticate(ctx, mr, enc, msg)
		case "remap":
			ws.handleRemap(ctx, mr, enc, msg)
		default:
			sendErr(enc, authErrf(CodeInvalidRequest, "", "unknown message type %q", msg.Type))
			return
		}
	}
}

// sendErr reports a failure to the peer, carrying the typed taxonomy
// so the remote client reconstructs the same *AuthError.
func sendErr(enc *json.Encoder, err error) {
	m := wireMsg{Type: "error", Error: err.Error(), ErrorCode: string(CodeOf(err))}
	var ae *AuthError
	if errors.As(err, &ae) {
		m.ErrorClient = string(ae.ClientID)
		if ae.Err != nil {
			// Send the cause text: the receiving side re-wraps it in an
			// AuthError, which re-attaches the structured suffix.
			m.Error = ae.Err.Error()
		}
	}
	enc.Encode(m)
}

func (ws *WireServer) handleAuthenticate(ctx context.Context, mr *msgReader, enc *json.Encoder, msg wireMsg) {
	ch, err := ws.auth.IssueChallenge(ctx, ClientID(msg.ClientID))
	if err != nil {
		sendErr(enc, err)
		return
	}
	if err := enc.Encode(wireMsg{Type: "challenge", Challenge: ch}); err != nil {
		return
	}
	var respMsg wireMsg
	if err := mr.next(&respMsg); err != nil {
		return
	}
	if respMsg.Type != "response" || respMsg.Response == nil {
		sendErr(enc, authErrf(CodeInvalidRequest, ClientID(msg.ClientID), "expected response, got %q", respMsg.Type))
		return
	}
	ok, sessionKey, err := ws.auth.VerifySession(ctx, ClientID(msg.ClientID), respMsg.ChallengeID, *respMsg.Response)
	if err != nil {
		sendErr(enc, err)
		return
	}
	verdict := wireMsg{Type: "verdict", Accepted: ok}
	if ok {
		verdict.Confirm = confirmTag(sessionKey)
		verdict.RemapAdvised = ws.auth.NeedsRemap(ClientID(msg.ClientID))
	}
	enc.Encode(verdict)
}

func (ws *WireServer) handleRemap(ctx context.Context, mr *msgReader, enc *json.Encoder, msg wireMsg) {
	req, err := ws.auth.BeginRemap(ctx, ClientID(msg.ClientID))
	if err != nil {
		sendErr(enc, err)
		return
	}
	if err := enc.Encode(wireMsg{Type: "remap_challenge", Remap: req}); err != nil {
		return
	}
	var done wireMsg
	if err := mr.next(&done); err != nil {
		return
	}
	if done.Type != "remap_done" {
		sendErr(enc, authErrf(CodeInvalidRequest, ClientID(msg.ClientID), "expected remap_done, got %q", done.Type))
		return
	}
	if err := ws.auth.CompleteRemap(ctx, ClientID(msg.ClientID), done.Success); err != nil {
		sendErr(enc, err)
		return
	}
	enc.Encode(wireMsg{Type: "remap_ack"})
}

// WireClient is the client side of the TCP transport.
type WireClient struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a WireServer. ctx bounds the connection attempt
// only; pass a context to each transaction to bound the transaction.
func Dial(ctx context.Context, addr string) (*WireClient, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &WireClient{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}, nil
}

// Close releases the connection.
func (wc *WireClient) Close() error { return wc.conn.Close() }

// armCtx attaches ctx to the connection for the duration of one
// transaction: the context deadline becomes the I/O deadline, and
// cancellation mid-transaction unblocks any in-flight read or write by
// forcing the deadline into the past. The returned release must be
// called when the transaction ends.
func (wc *WireClient) armCtx(ctx context.Context) (release func(), err error) {
	if err := ctxErr(ctx, ""); err != nil {
		return nil, err
	}
	deadline := time.Time{}
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	if err := wc.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() {
		wc.conn.SetDeadline(time.Unix(1, 0))
	})
	return func() { stop() }, nil
}

// ioErr converts a transport failure during a context-bound
// transaction into the typed taxonomy when the context caused it.
func ioErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return &AuthError{Code: CodeCanceled, Err: cerr}
	}
	// armCtx mirrors the context deadline onto the connection, so a
	// transport timeout during an armed transaction is the context
	// expiring — the net timer can fire a beat before the context's
	// own timer does.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if _, ok := ctx.Deadline(); ok {
			return &AuthError{Code: CodeCanceled, Err: context.DeadlineExceeded}
		}
	}
	return err
}

func (wc *WireClient) recv() (wireMsg, error) {
	var msg wireMsg
	if err := wc.dec.Decode(&msg); err != nil {
		if errors.Is(err, io.EOF) {
			return msg, authErrf(CodeInternal, "", "auth: server closed connection")
		}
		return msg, err
	}
	if msg.Type == "error" {
		return msg, errorFromWire(ErrorCode(msg.ErrorCode), ClientID(msg.ErrorClient), msg.Error)
	}
	return msg, nil
}

// confirmTag derives the non-secret key-confirmation value exchanged
// on the wire: HMAC(sessionKey, "confirm"), hex encoded.
func confirmTag(sessionKey [32]byte) string {
	mac := hmac.New(sha256.New, sessionKey[:])
	mac.Write([]byte("authenticache/session/confirm"))
	return hex.EncodeToString(mac.Sum(nil))
}

// Authenticate runs one full authentication transaction for the
// responder and returns the server's verdict.
func (wc *WireClient) Authenticate(ctx context.Context, r *Responder) (bool, error) {
	ok, _, err := wc.AuthenticateSession(ctx, r)
	return ok, err
}

// AuthenticateSession authenticates and, on acceptance, returns the
// established per-transaction session key. The server's verdict
// carries a key-confirmation tag; a verdict whose tag does not match
// the locally derived key is treated as a protocol failure (a
// tampering or desynchronisation signal).
func (wc *WireClient) AuthenticateSession(ctx context.Context, r *Responder) (bool, [32]byte, error) {
	var zero [32]byte
	release, err := wc.armCtx(ctx)
	if err != nil {
		return false, zero, err
	}
	defer release()
	if err := wc.enc.Encode(wireMsg{Type: "authenticate", ClientID: string(r.ID)}); err != nil {
		return false, zero, ioErr(ctx, err)
	}
	msg, err := wc.recv()
	if err != nil {
		return false, zero, ioErr(ctx, err)
	}
	if msg.Type != "challenge" || msg.Challenge == nil {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: expected challenge, got %q", msg.Type)
	}
	resp, err := r.Respond(msg.Challenge)
	if err != nil {
		return false, zero, err
	}
	if err := wc.enc.Encode(wireMsg{
		Type:        "response",
		ChallengeID: msg.Challenge.ID,
		Response:    &resp,
	}); err != nil {
		return false, zero, ioErr(ctx, err)
	}
	verdict, err := wc.recv()
	if err != nil {
		return false, zero, ioErr(ctx, err)
	}
	if verdict.Type != "verdict" {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: expected verdict, got %q", verdict.Type)
	}
	if !verdict.Accepted {
		return false, zero, nil
	}
	sessionKey := r.SessionKey(msg.Challenge)
	if verdict.Confirm != confirmTag(sessionKey) {
		return false, zero, authErrf(CodeInvalidRequest, "", "auth: session key confirmation mismatch")
	}
	if verdict.RemapAdvised {
		// The server says the CRP budget under this key is spent; run
		// the key-update transaction immediately so the next
		// authentication uses a fresh logical map.
		if err := wc.remapArmed(ctx, r); err != nil {
			return true, sessionKey, fmt.Errorf("auth: advised remap failed: %w", err)
		}
	}
	return true, sessionKey, nil
}

// Remap runs one key-update transaction, rotating the responder's key
// on success.
func (wc *WireClient) Remap(ctx context.Context, r *Responder) error {
	release, err := wc.armCtx(ctx)
	if err != nil {
		return err
	}
	defer release()
	return wc.remapArmed(ctx, r)
}

// remapArmed runs the remap transaction on a connection whose context
// is already armed.
func (wc *WireClient) remapArmed(ctx context.Context, r *Responder) error {
	if err := wc.enc.Encode(wireMsg{Type: "remap", ClientID: string(r.ID)}); err != nil {
		return ioErr(ctx, err)
	}
	msg, err := wc.recv()
	if err != nil {
		return ioErr(ctx, err)
	}
	if msg.Type != "remap_challenge" || msg.Remap == nil {
		return authErrf(CodeInvalidRequest, "", "auth: expected remap_challenge, got %q", msg.Type)
	}
	success := r.HandleRemap(msg.Remap) == nil
	if err := wc.enc.Encode(wireMsg{Type: "remap_done", Success: success}); err != nil {
		return ioErr(ctx, err)
	}
	ack, err := wc.recv()
	if err != nil {
		return ioErr(ctx, err)
	}
	if ack.Type != "remap_ack" {
		return authErrf(CodeInvalidRequest, "", "auth: expected remap_ack, got %q", ack.Type)
	}
	if !success {
		return authErrf(CodeInternal, "", "auth: client failed to derive the new key")
	}
	return nil
}
