package auth

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/rng"
)

// benchFleet enrolls n independent clients, each with its own error
// map, mirroring a server fronting a device fleet.
func benchFleet(b *testing.B, srv *Server, n int) []ClientID {
	b.Helper()
	g := errormap.NewGeometry(16384)
	r := rng.New(4242)
	ids := make([]ClientID, n)
	for i := range ids {
		m := errormap.NewMap(g)
		m.AddPlane(680, errormap.RandomPlane(g, 120, r))
		id := ClientID(fmt.Sprintf("bench-dev-%d", i))
		if _, err := srv.Enroll(ctx, id, m); err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

// BenchmarkVerifyParallel measures issue+verify throughput across many
// enrolled clients under b.RunParallel. Clients are embarrassingly
// independent — per-client state never crosses records — so this is the
// workload that exposes serialization in the server's locking: a global
// mutex flatlines as goroutines are added, a sharded store scales.
//
// The response is not a genuine device answer (building one per
// iteration would benchmark the simulator, not the server); a
// wrong-length-safe zero response exercises the identical verify path
// (pending lookup, consume, Hamming distance, threshold) and ends in a
// rejection, which costs the same as an acceptance.
func BenchmarkVerifyParallel(b *testing.B) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 64
	srv := NewServer(cfg, 99)
	ids := benchFleet(b, srv, 64)

	// Warm the per-client logical-field caches so the steady state is
	// measured, not the one-time distance transforms.
	for _, id := range ids {
		ch, err := srv.IssueChallenge(ctx, id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Verify(ctx, id, ch.ID, crp.NewResponse(len(ch.Bits))); err != nil {
			b.Fatal(err)
		}
	}

	var ctr int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&ctr, 1)
			id := ids[int(i)%len(ids)]
			ch, err := srv.IssueChallenge(ctx, id)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := srv.Verify(ctx, id, ch.ID, crp.NewResponse(len(ch.Bits))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
