package auth

import (
	"testing"

	"repro/internal/crp"
)

func TestMultiVddChallengeSpansPlanes(t *testing.T) {
	m := testMap(t, 16384, 100, 31, 660, 680, 700)
	srv, resp := enrolledPair(t, DefaultConfig(), m, m)

	ch, err := srv.IssueChallengeMulti(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	vs := ch.Voltages()
	if len(vs) != 3 {
		t.Fatalf("challenge spans %d planes, want 3 (%v)", len(vs), vs)
	}
	answer, err := resp.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := srv.Verify(ctx, "dev-1", ch.ID, answer)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("genuine client rejected on a multi-Vdd challenge")
	}
}

func TestMultiVddSkipsReservedPlanes(t *testing.T) {
	m := testMap(t, 16384, 100, 32, 660, 680, 700)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m, 700)
	ch, err := srv.IssueChallengeMulti(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range ch.Bits {
		if b.VddMV == 700 {
			t.Fatalf("bit %d uses the reserved plane", i)
		}
	}
}

func TestMultiVddImpostorStillRejected(t *testing.T) {
	enrolled := testMap(t, 16384, 100, 33, 660, 680)
	impostor := testMap(t, 16384, 100, 133, 660, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), enrolled, enrolled)
	key, _ := srv.CurrentKey("dev-1")
	fake := NewResponder("dev-1", NewSimDevice(impostor), key)

	ch, err := srv.IssueChallengeMulti(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	answer, err := fake.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); ok {
		t.Fatal("impostor accepted on multi-Vdd challenge")
	}
}

func TestMultiVddBurnsPairsPerPlane(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 30
	m := testMap(t, 1024, 30, 34, 660, 680)
	srv, _ := enrolledPair(t, cfg, m, m)
	seen := map[[3]int]bool{}
	for round := 0; round < 10; round++ {
		ch, err := srv.IssueChallengeMulti(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range ch.Bits {
			k := [3]int{b.A, b.B, b.VddMV}
			if b.A > b.B {
				k = [3]int{b.B, b.A, b.VddMV}
			}
			if seen[k] {
				t.Fatalf("pair %v reissued", k)
			}
			seen[k] = true
		}
	}
}

func TestMultiVddUnknownClient(t *testing.T) {
	srv := NewServer(DefaultConfig(), 1)
	if _, err := srv.IssueChallengeMulti(ctx, "ghost"); err == nil {
		t.Fatal("unknown client accepted")
	}
}

// The same physical pair may appear at two different voltages — they
// are distinct challenge points per the paper's 3D (x, y, V) space.
func TestSamePairDifferentPlanesAllowed(t *testing.T) {
	reg := crp.NewRegistry()
	if !reg.Consume(&crp.Challenge{Bits: []crp.PairBit{{A: 1, B: 2, VddMV: 660}}}) {
		t.Fatal("first consume failed")
	}
	if !reg.Consume(&crp.Challenge{Bits: []crp.PairBit{{A: 1, B: 2, VddMV: 680}}}) {
		t.Fatal("same pair at different Vdd rejected")
	}
}
