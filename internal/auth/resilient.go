package auth

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/rng"
)

// Self-healing wire client: per-transaction retries with capped
// exponential backoff and jitter on top of WireClient. Every retry is
// a complete fresh transaction — the underlying client never resumes
// a half-finished exchange, so a challenge whose response has been
// revealed (burned) is never replayed; retries are gated on
// Retryable's classification of the failure.

// RetryPolicy tunes the retry loop. The zero value gets the
// documented defaults.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per transaction (first try
	// included). 0 means 10.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt. 0 means
	// 10 ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. 0 means 2 s.
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt. 0 means 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomised
	// (full-jitter style over [1-Jitter, 1] of the delay), decorrelating
	// a fleet that got shed at the same instant. 0 means 0.5; negative
	// disables jitter.
	Jitter float64
	// Seed drives the jitter stream, making a client's retry timing
	// reproducible. 0 means a fixed default seed.
	Seed uint64
}

// WithDefaults fills zero fields with the documented defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 10
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 0x5e11f5ed
	}
	return p
}

// Delay computes the backoff before attempt n (n >= 1 is the first
// retry): capped exponential growth with jitter drawn from r.
// Exported so other retry loops — the cluster follower's redial, for
// one — reuse the policy shape instead of growing their own backoff
// arithmetic. Call WithDefaults (or fill every field) first; Delay
// does not apply defaults itself.
func (p RetryPolicy) Delay(n int, r *rng.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		frac := 1 - p.Jitter*r.Float64()
		d *= frac
	}
	return time.Duration(d)
}

// RetryStats counts what the retry loop did; read it after traffic to
// see how hard the wire fought back.
type RetryStats struct {
	// Attempts is the total number of transaction attempts.
	Attempts uint64
	// Retries is how many attempts were repeats after a retryable
	// failure.
	Retries uint64
	// Reconnects is how many attempts had to redial first.
	Reconnects uint64
	// Unavailable counts attempts rejected by server load shedding or
	// transient journal failure (CodeUnavailable).
	Unavailable uint64
}

// ResilientClient is a WireClient that survives a hostile wire: it
// redials dropped connections and retries failed transactions with
// capped exponential backoff, but only when Retryable says the
// failure is transient — a protocol verdict (burned challenge,
// unknown client, rejection) is returned immediately and never
// retried.
//
// The client itself is safe for concurrent use. What concurrency
// buys depends on the dial function: over a v2 dialer
// (DialResilientProto with ProtoV2) concurrent transactions pipeline
// on one shared connection, each on its own stream; over a v1 dialer
// the underlying WireClient is lock-step, so give each goroutine its
// own client as before.
type ResilientClient struct {
	addr   string
	policy RetryPolicy
	dial   func(ctx context.Context, addr string) (*WireClient, error)

	mu   sync.Mutex
	rand *rng.Rand
	wc   *WireClient // live connection, nil between failures
	// gen identifies the connection in wc: a failed attempt only
	// drops the connection it actually used, never a replacement a
	// concurrent attempt already dialled.
	gen   uint64
	stats RetryStats
}

// DialResilient connects to a WireServer with retry behaviour,
// speaking v1. The initial dial itself is retried under the same
// policy, so a server that is briefly unreachable does not fail the
// constructor.
func DialResilient(ctx context.Context, addr string, policy RetryPolicy) (*ResilientClient, error) {
	return DialResilientProto(ctx, addr, policy, ProtoV1)
}

// DialResilientProto connects with retry behaviour and an explicit
// framing. With ProtoV2, concurrent transactions on the returned
// client pipeline over one connection.
func DialResilientProto(ctx context.Context, addr string, policy RetryPolicy, proto Proto) (*ResilientClient, error) {
	rc := NewResilientClient(addr, policy, func(ctx context.Context, addr string) (*WireClient, error) {
		return DialProto(ctx, addr, proto)
	})
	if _, _, err := rc.conn(ctx); err != nil && !Retryable(err) {
		return nil, err
	}
	// A retryable dial failure is tolerated here: the first
	// transaction will keep trying under the policy.
	return rc, nil
}

// NewResilientClient builds a client around an explicit dial function
// without connecting; tests inject fault-wrapped dialers here.
func NewResilientClient(addr string, policy RetryPolicy, dial func(ctx context.Context, addr string) (*WireClient, error)) *ResilientClient {
	policy = policy.WithDefaults()
	return &ResilientClient{
		addr:   addr,
		policy: policy,
		dial:   dial,
		rand:   rng.New(policy.Seed),
	}
}

// Stats returns a snapshot of the retry counters so far.
func (rc *ResilientClient) Stats() RetryStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

// Close releases the current connection, if any.
func (rc *ResilientClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.wc == nil {
		return nil
	}
	err := rc.wc.Close()
	rc.wc = nil
	rc.gen++
	return err
}

// conn returns the live connection and its generation, redialling if
// the last attempt tore it down. The dial happens under the lock:
// concurrent attempts share the one replacement instead of racing to
// dial several.
func (rc *ResilientClient) conn(ctx context.Context) (*WireClient, uint64, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.wc == nil {
		rc.stats.Reconnects++
		wc, err := rc.dial(ctx, rc.addr)
		if err != nil {
			return nil, rc.gen, err
		}
		rc.wc = wc
	}
	return rc.wc, rc.gen, nil
}

// drop discards the connection of generation gen after a transport
// fault; a newer connection (already redialled by a concurrent
// attempt) is left alone.
func (rc *ResilientClient) drop(gen uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.wc == nil || gen != rc.gen {
		return
	}
	rc.wc.Close()
	rc.wc = nil
	rc.gen++
}

// backoff computes the next delay under the lock (the jitter stream
// is shared) and sleeps outside it.
func (rc *ResilientClient) backoff(ctx context.Context, attempt int) error {
	rc.mu.Lock()
	rc.stats.Retries++
	d := rc.policy.Delay(attempt-1, rc.rand)
	rc.mu.Unlock()
	return sleepCtx(ctx, d)
}

// do runs op as a fresh transaction per attempt until it succeeds,
// fails terminally, or the policy is exhausted.
func (rc *ResilientClient) do(ctx context.Context, op func(*WireClient) error) error {
	var last error
	for attempt := 1; attempt <= rc.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := rc.backoff(ctx, attempt); err != nil {
				return err
			}
		}
		rc.mu.Lock()
		rc.stats.Attempts++
		rc.mu.Unlock()
		wc, gen, err := rc.conn(ctx)
		if err == nil {
			err = op(wc)
		}
		if err == nil {
			return nil
		}
		last = err
		if !Retryable(err) {
			return err
		}
		if CodeOf(err) == CodeUnavailable {
			rc.mu.Lock()
			rc.stats.Unavailable++
			rc.mu.Unlock()
			if !errors.Is(err, io.EOF) {
				// The server answered a shed response, so the
				// connection is healthy: keep it instead of redialling
				// into the accept queue. (An EOF in the chain means
				// the server hung up — reconnect below.)
				continue
			}
		}
		rc.drop(gen)
	}
	return &AuthError{
		Code: CodeUnavailable,
		Err:  fmt.Errorf("%w: %d attempts exhausted, last: %w", ErrUnavailable, rc.policy.MaxAttempts, last),
	}
}

// Authenticate runs one authentication transaction with retries and
// returns the server's verdict.
func (rc *ResilientClient) Authenticate(ctx context.Context, r *Responder) (bool, error) {
	ok, _, err := rc.AuthenticateSession(ctx, r)
	return ok, err
}

// AuthenticateSession authenticates with retries and, on acceptance,
// returns the established session key. Each attempt is a whole new
// transaction with a fresh challenge — a response that already left
// the device is never re-sent.
func (rc *ResilientClient) AuthenticateSession(ctx context.Context, r *Responder) (bool, [32]byte, error) {
	var ok bool
	var key [32]byte
	err := rc.do(ctx, func(wc *WireClient) error {
		var err error
		ok, key, err = wc.AuthenticateSession(ctx, r)
		return err
	})
	return ok, key, err
}

// Remap runs one key-update transaction with retries. Safe to retry
// because the reserved-plane protocol is convergent: an interrupted
// rotation either never committed (both sides keep the old key) or
// committed after the client already derived the same key, and the
// retry simply rotates again.
func (rc *ResilientClient) Remap(ctx context.Context, r *Responder) error {
	return rc.do(ctx, func(wc *WireClient) error {
		return wc.Remap(ctx, r)
	})
}

// sleepCtx waits d or until ctx is done, converting cancellation into
// the typed taxonomy.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctxErr(ctx, "")
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctxErr(ctx, "")
	case <-t.C:
		return nil
	}
}
