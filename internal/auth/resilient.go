package auth

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/rng"
)

// Self-healing wire client: per-transaction retries with capped
// exponential backoff and jitter on top of WireClient. Every retry is
// a complete fresh transaction — the underlying client never resumes
// a half-finished exchange, so a challenge whose response has been
// revealed (burned) is never replayed; retries are gated on
// Retryable's classification of the failure.

// RetryPolicy tunes the retry loop. The zero value gets the
// documented defaults.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per transaction (first try
	// included). 0 means 10.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt. 0 means
	// 10 ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. 0 means 2 s.
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt. 0 means 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomised
	// (full-jitter style over [1-Jitter, 1] of the delay), decorrelating
	// a fleet that got shed at the same instant. 0 means 0.5; negative
	// disables jitter.
	Jitter float64
	// Seed drives the jitter stream, making a client's retry timing
	// reproducible. 0 means a fixed default seed.
	Seed uint64
}

// withDefaults fills zero fields with the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 10
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 0x5e11f5ed
	}
	return p
}

// delay computes the backoff before attempt n (n >= 1 is the first
// retry): capped exponential growth with jitter drawn from r.
func (p RetryPolicy) delay(n int, r *rng.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		frac := 1 - p.Jitter*r.Float64()
		d *= frac
	}
	return time.Duration(d)
}

// RetryStats counts what the retry loop did; read it after traffic to
// see how hard the wire fought back.
type RetryStats struct {
	// Attempts is the total number of transaction attempts.
	Attempts uint64
	// Retries is how many attempts were repeats after a retryable
	// failure.
	Retries uint64
	// Reconnects is how many attempts had to redial first.
	Reconnects uint64
	// Unavailable counts attempts rejected by server load shedding or
	// transient journal failure (CodeUnavailable).
	Unavailable uint64
}

// ResilientClient is a WireClient that survives a hostile wire: it
// redials dropped connections and retries failed transactions with
// capped exponential backoff, but only when Retryable says the
// failure is transient — a protocol verdict (burned challenge,
// unknown client, rejection) is returned immediately and never
// retried. It is NOT safe for concurrent use; give each goroutine its
// own client, as with WireClient.
type ResilientClient struct {
	addr   string
	policy RetryPolicy
	dial   func(ctx context.Context, addr string) (*WireClient, error)
	rand   *rng.Rand
	wc     *WireClient // live connection, nil between failures
	stats  RetryStats
}

// DialResilient connects to a WireServer with retry behaviour. The
// initial dial itself is retried under the same policy, so a server
// that is briefly unreachable does not fail the constructor.
func DialResilient(ctx context.Context, addr string, policy RetryPolicy) (*ResilientClient, error) {
	rc := NewResilientClient(addr, policy, Dial)
	if _, err := rc.conn(ctx); err != nil && !Retryable(err) {
		return nil, err
	}
	// A retryable dial failure is tolerated here: the first
	// transaction will keep trying under the policy.
	return rc, nil
}

// NewResilientClient builds a client around an explicit dial function
// without connecting; tests inject fault-wrapped dialers here.
func NewResilientClient(addr string, policy RetryPolicy, dial func(ctx context.Context, addr string) (*WireClient, error)) *ResilientClient {
	policy = policy.withDefaults()
	return &ResilientClient{
		addr:   addr,
		policy: policy,
		dial:   dial,
		rand:   rng.New(policy.Seed),
	}
}

// Stats returns the retry counters so far.
func (rc *ResilientClient) Stats() RetryStats { return rc.stats }

// Close releases the current connection, if any.
func (rc *ResilientClient) Close() error {
	if rc.wc == nil {
		return nil
	}
	err := rc.wc.Close()
	rc.wc = nil
	return err
}

// conn returns the live connection, redialling if the last attempt
// tore it down.
func (rc *ResilientClient) conn(ctx context.Context) (*WireClient, error) {
	if rc.wc != nil {
		return rc.wc, nil
	}
	rc.stats.Reconnects++
	wc, err := rc.dial(ctx, rc.addr)
	if err != nil {
		return nil, err
	}
	rc.wc = wc
	return wc, nil
}

// drop discards the current connection after a transport fault.
func (rc *ResilientClient) drop() {
	if rc.wc != nil {
		rc.wc.Close()
		rc.wc = nil
	}
}

// do runs op as a fresh transaction per attempt until it succeeds,
// fails terminally, or the policy is exhausted.
func (rc *ResilientClient) do(ctx context.Context, op func(*WireClient) error) error {
	var last error
	for attempt := 1; attempt <= rc.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			rc.stats.Retries++
			if err := sleepCtx(ctx, rc.policy.delay(attempt-1, rc.rand)); err != nil {
				return err
			}
		}
		rc.stats.Attempts++
		wc, err := rc.conn(ctx)
		if err == nil {
			err = op(wc)
		}
		if err == nil {
			return nil
		}
		last = err
		if !Retryable(err) {
			return err
		}
		if CodeOf(err) == CodeUnavailable {
			rc.stats.Unavailable++
			if !errors.Is(err, io.EOF) {
				// The server answered a shed response, so the
				// connection is healthy: keep it instead of redialling
				// into the accept queue. (An EOF in the chain means
				// the server hung up — reconnect below.)
				continue
			}
		}
		rc.drop()
	}
	return &AuthError{
		Code: CodeUnavailable,
		Err:  fmt.Errorf("%w: %d attempts exhausted, last: %w", ErrUnavailable, rc.policy.MaxAttempts, last),
	}
}

// Authenticate runs one authentication transaction with retries and
// returns the server's verdict.
func (rc *ResilientClient) Authenticate(ctx context.Context, r *Responder) (bool, error) {
	ok, _, err := rc.AuthenticateSession(ctx, r)
	return ok, err
}

// AuthenticateSession authenticates with retries and, on acceptance,
// returns the established session key. Each attempt is a whole new
// transaction with a fresh challenge — a response that already left
// the device is never re-sent.
func (rc *ResilientClient) AuthenticateSession(ctx context.Context, r *Responder) (bool, [32]byte, error) {
	var ok bool
	var key [32]byte
	err := rc.do(ctx, func(wc *WireClient) error {
		var err error
		ok, key, err = wc.AuthenticateSession(ctx, r)
		return err
	})
	return ok, key, err
}

// Remap runs one key-update transaction with retries. Safe to retry
// because the reserved-plane protocol is convergent: an interrupted
// rotation either never committed (both sides keep the old key) or
// committed after the client already derived the same key, and the
// retry simply rotates again.
func (rc *ResilientClient) Remap(ctx context.Context, r *Responder) error {
	return rc.do(ctx, func(wc *WireClient) error {
		return wc.Remap(ctx, r)
	})
}

// sleepCtx waits d or until ctx is done, converting cancellation into
// the typed taxonomy.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctxErr(ctx, "")
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctxErr(ctx, "")
	case <-t.C:
		return nil
	}
}
