package auth

import (
	"context"

	"repro/internal/crp"
	"repro/internal/ecc"
	"repro/internal/mapkey"
)

// Adaptive error remapping (paper Section 4.5).

// RemapRequest is the server→client key-update transaction.
type RemapRequest struct {
	Challenge *crp.Challenge `json:"challenge"`
	Helper    ecc.HelperData `json:"helper"`
}

// BeginRemap starts a key update for the client using a reserved
// voltage plane. The challenge uses the *default* (identity) mapping,
// as the new key cannot be derived with a mapping that itself depends
// on it. The server computes the expected response, draws a fresh
// secret, and returns helper data that lets the client reproduce the
// secret despite response noise. The new key is held pending until
// CompleteRemap.
func (s *Server) BeginRemap(ctx context.Context, id ClientID) (*RemapRequest, error) {
	if err := ctxErr(ctx, id); err != nil {
		return nil, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var reserved []int
	for _, v := range rec.physMap.Voltages() {
		if rec.reserved[v] {
			reserved = append(reserved, v)
		}
	}
	if len(reserved) == 0 {
		return nil, authErrf(CodeInvalidRequest, id, "auth: client has no reserved voltage planes")
	}
	vdd := reserved[s.randIntn(len(reserved))]
	phys := rec.physMap.Plane(vdd)
	g := rec.physMap.Geometry()

	// Response bits needed: keyBits * repetition factor.
	respBits := s.cfg.RemapKeyBits * ecc.Repetition
	s.randMu.Lock()
	ch := crp.Generate(g, respBits, vdd, s.rand)
	s.randMu.Unlock()
	ch.ID = rec.nextID
	rec.nextID++
	if s.journal != nil {
		// Key-update challenges draw from reserved planes and burn no
		// registry pairs, but the counter advance must persist so a
		// recovered server never reissues a live challenge ID.
		if err := s.journal.JournalCounter(string(id), rec.nextID); err != nil {
			return nil, unavailableErr(id, err)
		}
	}

	field := phys.DistanceTransform()
	expected := crp.NewResponse(len(ch.Bits))
	for i, b := range ch.Bits {
		da, fa := nearDist(field, b.A)
		db, fb := nearDist(field, b.B)
		expected.SetBit(i, crp.ResponseBit(da, fa, db, fb))
	}

	secret := make([]byte, (s.cfg.RemapKeyBits+7)/8)
	s.randMu.Lock()
	for i := range secret {
		secret[i] = byte(s.rand.Uint64())
	}
	s.randMu.Unlock()
	helper, err := ecc.GenerateHelper(expected.Bits, s.cfg.RemapKeyBits, secret)
	if err != nil {
		return nil, authErr(CodeInternal, id, err)
	}
	strengthened := ecc.StrengthenKey(secret, "remap")
	rec.remap = &remapState{newKey: mapkey.KeyFromBytes(strengthened[:], "remap/"+string(id))}
	return &RemapRequest{Challenge: ch, Helper: helper}, nil
}

// CompleteRemap commits the pending key rotation after the client
// acknowledges success (the client never discloses the response
// itself). Logical-plane caches are invalidated.
func (s *Server) CompleteRemap(ctx context.Context, id ClientID, success bool) error {
	if err := ctxErr(ctx, id); err != nil {
		return err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.remap == nil {
		return authErr(CodeNoRemapPending, id, ErrNoRemapPending)
	}
	if success {
		// The rotation is journaled before it takes effect: a key the
		// client already derived but the server lost to a crash would
		// strand the device. On journal failure the remap stays
		// pending so the client can retry the commit.
		if s.journal != nil {
			if err := s.journal.JournalRemap(string(id), [32]byte(rec.remap.newKey)); err != nil {
				return unavailableErr(id, err)
			}
		}
		rec.rotateKeyLocked(rec.remap.newKey)
	}
	rec.remap = nil
	return nil
}
