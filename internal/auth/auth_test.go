package auth

import (
	"errors"
	"testing"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/mapkey"
	"repro/internal/noise"
	"repro/internal/rng"
)

// enrolledPair returns a server with one enrolled client and the
// matching responder, whose device measures the given field map (equal
// to the enrolled map unless a test perturbs it).
func enrolledPair(t *testing.T, cfg Config, enrolled, field *errormap.Map, reserved ...int) (*Server, *Responder) {
	t.Helper()
	srv := NewServer(cfg, 42)
	key, err := srv.Enroll(ctx, "dev-1", enrolled, reserved...)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewResponder("dev-1", NewSimDevice(field), key)
	return srv, resp
}

func testMap(t *testing.T, lines, k int, seed uint64, vdds ...int) *errormap.Map {
	t.Helper()
	g := errormap.NewGeometry(lines)
	m := errormap.NewMap(g)
	r := rng.New(seed)
	for _, v := range vdds {
		m.AddPlane(v, errormap.RandomPlane(g, k, r))
	}
	return m
}

func TestEnrollAndAuthenticateHonestClient(t *testing.T) {
	m := testMap(t, 16384, 100, 1, 680)
	srv, resp := enrolledPair(t, DefaultConfig(), m, m)
	for i := 0; i < 5; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		answer, err := resp.Respond(ch)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := srv.Verify(ctx, "dev-1", ch.ID, answer)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("honest client rejected on attempt %d", i)
		}
	}
	st := srv.Stats()
	if st.Issued != 5 || st.Accepted != 5 || st.Rejected != 0 {
		t.Fatalf("stats = (%d,%d,%d)", st.Issued, st.Accepted, st.Rejected)
	}
	if st.Clients != 1 {
		t.Fatalf("stats clients = %d, want 1", st.Clients)
	}
}

func TestImpostorRejected(t *testing.T) {
	enrolled := testMap(t, 16384, 100, 2, 680)
	impostor := testMap(t, 16384, 100, 99, 680) // different chip
	srv, resp := enrolledPair(t, DefaultConfig(), enrolled, impostor)
	ch, err := srv.IssueChallenge(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	answer, err := resp.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := srv.Verify(ctx, "dev-1", ch.ID, answer)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impostor chip accepted")
	}
}

func TestNoisyHonestClientStillAccepted(t *testing.T) {
	enrolled := testMap(t, 16384, 100, 3, 680)
	// Field conditions: 10% new errors, 5% masked (normal operation).
	noisy := errormap.NewMap(enrolled.Geometry())
	noisy.AddPlane(680, noise.Apply(enrolled.Plane(680), noise.Profile{InjectFrac: 0.10, RemoveFrac: 0.05}, rng.New(4)))
	srv, resp := enrolledPair(t, DefaultConfig(), enrolled, noisy)
	accepted := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		answer, _ := resp.Respond(ch)
		ok, err := srv.Verify(ctx, "dev-1", ch.ID, answer)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	if accepted < trials-1 {
		t.Fatalf("noisy honest client accepted only %d/%d", accepted, trials)
	}
}

func TestUnknownClientErrors(t *testing.T) {
	srv := NewServer(DefaultConfig(), 1)
	if _, err := srv.IssueChallenge(ctx, "ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("IssueChallenge: %v", err)
	}
	if _, err := srv.Verify(ctx, "ghost", 0, crp.NewResponse(8)); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("Verify: %v", err)
	}
	if _, err := srv.BeginRemap(ctx, "ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("BeginRemap: %v", err)
	}
	if _, err := srv.CurrentKey("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("CurrentKey: %v", err)
	}
}

func TestDoubleEnrollRejected(t *testing.T) {
	m := testMap(t, 4096, 50, 5, 680)
	srv := NewServer(DefaultConfig(), 1)
	if _, err := srv.Enroll(ctx, "dev", m); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Enroll(ctx, "dev", m); !errors.Is(err, ErrAlreadyEnrolled) {
		t.Fatalf("double enroll: %v", err)
	}
	if !srv.Enrolled("dev") || srv.Enrolled("other") {
		t.Fatal("Enrolled accessor wrong")
	}
}

func TestChallengeNotReplayable(t *testing.T) {
	m := testMap(t, 16384, 100, 6, 680)
	srv, resp := enrolledPair(t, DefaultConfig(), m, m)
	ch, _ := srv.IssueChallenge(ctx, "dev-1")
	answer, _ := resp.Respond(ch)
	if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); !ok {
		t.Fatal("first verify failed")
	}
	// Replaying the same challenge ID must fail: it was consumed.
	if _, err := srv.Verify(ctx, "dev-1", ch.ID, answer); !errors.Is(err, ErrUnknownChallenge) {
		t.Fatalf("replay: %v", err)
	}
}

func TestIssuedPairsNeverRepeat(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 64
	m := testMap(t, 4096, 50, 7, 680)
	srv, _ := enrolledPair(t, cfg, m, m)
	seen := map[[2]int]bool{}
	for i := 0; i < 30; i++ {
		ch, err := srv.IssueChallenge(ctx, "dev-1")
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range ch.Bits {
			k := [2]int{b.A, b.B}
			if b.A > b.B {
				k = [2]int{b.B, b.A}
			}
			if seen[k] {
				t.Fatalf("pair %v issued twice", k)
			}
			seen[k] = true
		}
	}
}

func TestIssueChallengeAtRespectsReservation(t *testing.T) {
	cfg := DefaultConfig()
	m := testMap(t, 4096, 50, 8, 680, 700)
	srv, _ := enrolledPair(t, cfg, m, m, 700)
	if _, err := srv.IssueChallengeAt(ctx, "dev-1", 700); err == nil {
		t.Fatal("reserved voltage issued for ordinary auth")
	}
	if _, err := srv.IssueChallengeAt(ctx, "dev-1", 680); err != nil {
		t.Fatalf("normal voltage rejected: %v", err)
	}
	if _, err := srv.IssueChallengeAt(ctx, "dev-1", 999); !errors.Is(err, ErrBadPlane) {
		t.Fatalf("unknown voltage: %v", err)
	}
}

func TestWrongLengthResponseRejected(t *testing.T) {
	m := testMap(t, 4096, 50, 9, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m)
	ch, _ := srv.IssueChallenge(ctx, "dev-1")
	short := crp.NewResponse(8)
	ok, err := srv.Verify(ctx, "dev-1", ch.ID, short)
	if ok || err == nil {
		t.Fatal("short response accepted")
	}
}

func TestWrongKeyClientRejected(t *testing.T) {
	// A client holding a stale key answers in the wrong logical space
	// and must be rejected even though the silicon is genuine.
	m := testMap(t, 16384, 100, 10, 680)
	srv, resp := enrolledPair(t, DefaultConfig(), m, m)
	stale := NewResponder("dev-1", NewSimDevice(m), mapkey.KeyFromBytes([]byte("wrong"), "k"))
	ch, _ := srv.IssueChallenge(ctx, "dev-1")
	answer, _ := stale.Respond(ch)
	if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); ok {
		t.Fatal("stale-key client accepted")
	}
	_ = resp
}

func TestRemapProtocolRotatesKey(t *testing.T) {
	cfg := DefaultConfig()
	m := testMap(t, 16384, 100, 11, 680, 700)
	srv, resp := enrolledPair(t, cfg, m, m, 700)
	oldKey := resp.Key()

	req, err := srv.BeginRemap(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Challenge.Bits) != cfg.RemapKeyBits*5 {
		t.Fatalf("remap challenge bits = %d", len(req.Challenge.Bits))
	}
	if err := resp.HandleRemap(req); err != nil {
		t.Fatal(err)
	}
	if err := srv.CompleteRemap(ctx, "dev-1", true); err != nil {
		t.Fatal(err)
	}
	if resp.Key() == oldKey {
		t.Fatal("client key did not rotate")
	}
	srvKey, _ := srv.CurrentKey("dev-1")
	if srvKey != resp.Key() {
		t.Fatal("client and server derived different keys")
	}
	// Authentication continues to work under the new key.
	ch, _ := srv.IssueChallenge(ctx, "dev-1")
	answer, _ := resp.Respond(ch)
	if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); !ok {
		t.Fatal("post-remap authentication failed")
	}
}

func TestRemapSurvivesResponseNoise(t *testing.T) {
	cfg := DefaultConfig()
	enrolled := testMap(t, 16384, 100, 12, 680, 700)
	// Field map with mild noise on the reserved plane: the fuzzy
	// extractor must still converge.
	field := enrolled.Clone()
	noisyPlane := noise.Apply(enrolled.Plane(700), noise.Profile{InjectFrac: 0.02}, rng.New(13))
	field = errormap.NewMap(enrolled.Geometry())
	field.AddPlane(680, enrolled.Plane(680).Clone())
	field.AddPlane(700, noisyPlane)
	srv, resp := enrolledPair(t, cfg, enrolled, field, 700)

	req, err := srv.BeginRemap(ctx, "dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.HandleRemap(req); err != nil {
		t.Fatal(err)
	}
	if err := srv.CompleteRemap(ctx, "dev-1", true); err != nil {
		t.Fatal(err)
	}
	srvKey, _ := srv.CurrentKey("dev-1")
	if srvKey != resp.Key() {
		t.Fatal("keys diverged under mild reserved-plane noise")
	}
}

func TestRemapWithoutReservedPlane(t *testing.T) {
	m := testMap(t, 4096, 50, 14, 680)
	srv, _ := enrolledPair(t, DefaultConfig(), m, m)
	if _, err := srv.BeginRemap(ctx, "dev-1"); err == nil {
		t.Fatal("remap without reserved planes accepted")
	}
	if err := srv.CompleteRemap(ctx, "dev-1", true); !errors.Is(err, ErrNoRemapPending) {
		t.Fatalf("CompleteRemap: %v", err)
	}
}

func TestCompleteRemapFailureKeepsOldKey(t *testing.T) {
	cfg := DefaultConfig()
	m := testMap(t, 16384, 100, 15, 680, 700)
	srv, resp := enrolledPair(t, cfg, m, m, 700)
	oldSrvKey, _ := srv.CurrentKey("dev-1")
	if _, err := srv.BeginRemap(ctx, "dev-1"); err != nil {
		t.Fatal(err)
	}
	if err := srv.CompleteRemap(ctx, "dev-1", false); err != nil {
		t.Fatal(err)
	}
	srvKey, _ := srv.CurrentKey("dev-1")
	if srvKey != oldSrvKey {
		t.Fatal("failed remap rotated the server key")
	}
	// Old key still authenticates.
	ch, _ := srv.IssueChallenge(ctx, "dev-1")
	answer, _ := resp.Respond(ch)
	if ok, _ := srv.Verify(ctx, "dev-1", ch.ID, answer); !ok {
		t.Fatal("old key broken after failed remap")
	}
}

// When the pair space of a tiny map runs dry, the server must fail
// with ErrExhausted — never hang retrying or reissue burned pairs.
func TestChallengeSpaceExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeBits = 32
	m := testMap(t, 64, 8, 45, 680) // 64*63/2 = 2016 pairs -> ~63 challenges
	srv, _ := enrolledPair(t, cfg, m, m)

	issued := 0
	var exhausted bool
	for i := 0; i < 100; i++ {
		_, err := srv.IssueChallenge(ctx, "dev-1")
		if err == nil {
			issued++
			continue
		}
		if !errors.Is(err, ErrExhausted) {
			t.Fatalf("unexpected error: %v", err)
		}
		exhausted = true
		break
	}
	if !exhausted {
		t.Fatalf("space never exhausted after %d issues", issued)
	}
	// The generator's rejection sampling gets unlucky before literally
	// every pair is burned, but the bulk of the space must be usable.
	if issued < 40 {
		t.Fatalf("only %d challenges issued before exhaustion (space holds ~63)", issued)
	}
	// Exhaustion is sticky.
	if _, err := srv.IssueChallenge(ctx, "dev-1"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("post-exhaustion issue: %v", err)
	}
}

func TestThresholdReasonable(t *testing.T) {
	srv := NewServer(DefaultConfig(), 1)
	thr := srv.Threshold(256)
	if thr <= 256/10 || thr >= 128 {
		t.Fatalf("threshold = %d for 256 bits", thr)
	}
}

func TestLogicalPlanePreservesErrorCount(t *testing.T) {
	g := errormap.NewGeometry(4096)
	phys := errormap.RandomPlane(g, 60, rng.New(16))
	key := mapkey.KeyFromBytes([]byte("k"), "t")
	logical := LogicalPlane(phys, key, 680)
	if logical.ErrorCount() != phys.ErrorCount() {
		t.Fatalf("logical errors = %d, phys = %d", logical.ErrorCount(), phys.ErrorCount())
	}
	if logical.Equal(phys) {
		t.Fatal("logical plane identical to physical (no permutation?)")
	}
	// Different voltages must use different permutations.
	l2 := LogicalPlane(phys, key, 700)
	if l2.Equal(logical) {
		t.Fatal("plane permutations identical across voltages")
	}
}
