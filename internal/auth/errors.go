package auth

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
)

// Sentinel errors returned by the server. Every error the server
// produces wraps one of these (or is a plain *AuthError with a code
// that has no sentinel), so errors.Is keeps working across the typed
// taxonomy and across the TCP transport.
var (
	ErrUnknownClient    = errors.New("auth: unknown client")
	ErrAlreadyEnrolled  = errors.New("auth: client already enrolled")
	ErrUnknownChallenge = errors.New("auth: unknown or expired challenge")
	ErrExhausted        = errors.New("auth: challenge space exhausted for this voltage")
	ErrNoRemapPending   = errors.New("auth: no remap in progress")
	ErrBadPlane         = errors.New("auth: voltage plane not enrolled")
	ErrUnavailable      = errors.New("auth: server temporarily unavailable")
)

// ErrorCode classifies an authentication-layer failure. Codes are
// stable protocol identifiers: they travel over the wire in error
// messages so a remote client reconstructs the same typed error an
// in-process caller gets.
type ErrorCode string

const (
	// CodeUnknownClient: the client id is not enrolled.
	CodeUnknownClient ErrorCode = "unknown_client"
	// CodeAlreadyEnrolled: enrollment for an id that already exists.
	CodeAlreadyEnrolled ErrorCode = "already_enrolled"
	// CodeUnknownChallenge: the challenge id is unknown, already
	// consumed, or expired.
	CodeUnknownChallenge ErrorCode = "unknown_challenge"
	// CodeExhausted: the client's CRP space at the voltage is spent.
	CodeExhausted ErrorCode = "exhausted"
	// CodeNoRemapPending: CompleteRemap without a BeginRemap.
	CodeNoRemapPending ErrorCode = "no_remap_pending"
	// CodeBadPlane: the requested voltage plane is not enrolled.
	CodeBadPlane ErrorCode = "bad_plane"
	// CodeInvalidRequest: a structurally invalid request (wrong
	// response length, reserved plane for ordinary auth, bad
	// enrollment input, malformed wire message).
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeCanceled: the caller's context was cancelled or its deadline
	// expired before the operation completed.
	CodeCanceled ErrorCode = "canceled"
	// CodeUnavailable: the server is transiently unable to serve the
	// request — it is shedding load (in-flight transaction cap,
	// connection cap) or its durability journal briefly failed. The
	// request itself was well-formed; back off and retry.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// codeSentinels maps wire codes back to the package sentinels, so a
// remote *AuthError satisfies the same errors.Is checks as a local
// one. Codes without a sentinel (invalid_request, canceled, internal)
// reconstruct as bare AuthErrors.
var codeSentinels = map[ErrorCode]error{
	CodeUnknownClient:    ErrUnknownClient,
	CodeAlreadyEnrolled:  ErrAlreadyEnrolled,
	CodeUnknownChallenge: ErrUnknownChallenge,
	CodeExhausted:        ErrExhausted,
	CodeNoRemapPending:   ErrNoRemapPending,
	CodeBadPlane:         ErrBadPlane,
	CodeUnavailable:      ErrUnavailable,
}

// AuthError is the typed error every auth-layer operation returns on
// failure: a stable code, the client the operation concerned (empty
// for pre-lookup failures), and the wrapped cause. Unwrap exposes the
// cause so errors.Is(err, ErrUnknownClient) and friends work whether
// the error crossed the wire or not.
type AuthError struct {
	Code     ErrorCode
	ClientID ClientID
	Err      error
}

// Error renders the cause followed by the structured fields.
func (e *AuthError) Error() string {
	msg := string(e.Code)
	if e.Err != nil {
		msg = e.Err.Error()
	}
	if e.ClientID != "" {
		return fmt.Sprintf("%s [code=%s client=%s]", msg, e.Code, e.ClientID)
	}
	return fmt.Sprintf("%s [code=%s]", msg, e.Code)
}

// Unwrap exposes the wrapped cause.
func (e *AuthError) Unwrap() error { return e.Err }

// authErr builds a typed error wrapping cause.
func authErr(code ErrorCode, id ClientID, cause error) *AuthError {
	return &AuthError{Code: code, ClientID: id, Err: cause}
}

// authErrf builds a typed error around a formatted one-off cause.
func authErrf(code ErrorCode, id ClientID, format string, args ...any) *AuthError {
	return &AuthError{Code: code, ClientID: id, Err: fmt.Errorf(format, args...)}
}

// ctxErr converts a cancelled/expired context into the typed taxonomy
// (nil if the context is still live). errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) still hold through the
// wrap.
func ctxErr(ctx context.Context, id ClientID) error {
	if err := ctx.Err(); err != nil {
		return &AuthError{Code: CodeCanceled, ClientID: id, Err: err}
	}
	return nil
}

// CodeOf extracts the ErrorCode from any error produced by this
// package, or CodeInternal when the error carries no code.
func CodeOf(err error) ErrorCode {
	var ae *AuthError
	if errors.As(err, &ae) {
		return ae.Code
	}
	switch {
	case errors.Is(err, ErrUnknownClient):
		return CodeUnknownClient
	case errors.Is(err, ErrAlreadyEnrolled):
		return CodeAlreadyEnrolled
	case errors.Is(err, ErrUnknownChallenge):
		return CodeUnknownChallenge
	case errors.Is(err, ErrExhausted):
		return CodeExhausted
	case errors.Is(err, ErrNoRemapPending):
		return CodeNoRemapPending
	case errors.Is(err, ErrBadPlane):
		return CodeBadPlane
	case errors.Is(err, ErrUnavailable):
		return CodeUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	}
	return CodeInternal
}

// remoteCause is the client-side reconstruction of a server error
// that arrived over the wire: it preserves the server's message while
// unwrapping to the sentinel matching the transported code.
type remoteCause struct {
	msg      string
	sentinel error
}

func (r *remoteCause) Error() string { return r.msg }
func (r *remoteCause) Unwrap() error { return r.sentinel }

// unavailableErr wraps a transient server-side failure (journal
// append failure, load shed) so that errors.Is(err, ErrUnavailable)
// holds locally exactly as it does after a wire round-trip, and
// Retryable classifies the error as worth retrying.
func unavailableErr(id ClientID, cause error) *AuthError {
	return &AuthError{Code: CodeUnavailable, ClientID: id, Err: fmt.Errorf("%w: %w", ErrUnavailable, cause)}
}

// Retryable reports whether a failed transaction is safe and useful
// to retry from scratch. The classification is over the ErrorCode
// taxonomy plus transport-level failures:
//
//   - unavailable is the server explicitly asking for a backed-off
//     retry (load shedding, transient journal failure);
//   - every other typed code is a protocol-level verdict that a
//     retry cannot change — in particular unknown_challenge (a burned
//     or replayed challenge MUST NOT be retried: its pairs are dead)
//     and canceled (the caller's own context ended the attempt);
//   - untyped transport failures (resets, dropped connections, torn
//     reads) are retryable on a fresh connection: the transaction
//     never completed, and every retry starts a whole new transaction
//     with a fresh challenge, never re-sending a response.
//
// A retry must always be a full new transaction; WireClient never
// resumes a half-finished exchange.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var ae *AuthError
	if errors.As(err, &ae) {
		switch ae.Code {
		case CodeUnavailable:
			return true
		case CodeUnknownClient, CodeAlreadyEnrolled, CodeUnknownChallenge,
			CodeExhausted, CodeNoRemapPending, CodeBadPlane,
			CodeInvalidRequest, CodeCanceled, CodeInternal:
			return false
		}
		// A code this build does not know (newer peer): the
		// conservative direction is no retry.
		return false
	}
	// Untyped errors: transport failures only. Anything else (device
	// faults, encoding bugs) is not fixed by resending.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// errorFromWire rebuilds the typed error a server sent over the TCP
// transport. Messages from pre-taxonomy servers (no code) degrade to
// an untyped error carrying the text.
func errorFromWire(code ErrorCode, clientID ClientID, msg string) error {
	if code == "" {
		//lint:ignore errtaxonomy pre-taxonomy peers send no code; there is nothing typed to rebuild
		return fmt.Errorf("auth: server error: %s", msg)
	}
	cause := error(errors.New(msg))
	if sentinel, ok := codeSentinels[code]; ok {
		cause = &remoteCause{msg: msg, sentinel: sentinel}
	}
	return &AuthError{Code: code, ClientID: clientID, Err: cause}
}
