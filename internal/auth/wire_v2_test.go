package auth

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/fault"
	"repro/internal/wire"
)

// TestResilientV2SurvivesDrops is the v1 drop-survival test on the
// binary framing: the retry classification must behave identically —
// transport loss redials, verdicts never retry.
func TestResilientV2SurvivesDrops(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWireFaulty(t, NewWireServer(srv), fault.ConnPlan{DropProb: 0.1, Seed: 4321})
	defer stop()

	rc, err := DialResilientProto(ctx, addr, fastPolicy(), ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 30; i++ {
		ok, err := rc.Authenticate(ctx, resp)
		if err != nil {
			t.Fatalf("round %d: %v (stats %+v)", i, err, rc.Stats())
		}
		if !ok {
			t.Fatalf("round %d: genuine client rejected", i)
		}
	}
	if rc.Stats().Retries == 0 {
		t.Fatal("30 rounds at 10% drop rate injected no retries; the harness is not exercising faults")
	}
}

// TestResilientV2RemapSurvivesDrops mirrors the v1 remap chaos test
// on the binary framing.
func TestResilientV2RemapSurvivesDrops(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWireFaulty(t, NewWireServer(srv), fault.ConnPlan{DropProb: 0.15, Seed: 77})
	defer stop()

	rc, err := DialResilientProto(ctx, addr, fastPolicy(), ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 10; i++ {
		oldKey := resp.Key()
		if err := rc.Remap(ctx, resp); err != nil {
			t.Fatalf("remap %d: %v (stats %+v)", i, err, rc.Stats())
		}
		if resp.Key() == oldKey {
			t.Fatalf("remap %d: key not rotated", i)
		}
		ok, err := rc.Authenticate(ctx, resp)
		if err != nil || !ok {
			t.Fatalf("post-remap auth %d: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestResilientV2PipelinedUnderDrops runs concurrent transactions on
// ONE resilient v2 client while the wire drops connections: the
// generation-tracked redial must converge (no thundering redial, no
// lost transactions) with every goroutine sharing the pipeline.
func TestResilientV2PipelinedUnderDrops(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWireFaulty(t, NewWireServer(srv), fault.ConnPlan{DropProb: 0.05, Seed: 2025})
	defer stop()

	rc, err := DialResilientProto(ctx, addr, fastPolicy(), ProtoV2)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	const lanes, rounds = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, lanes)
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				ok, err := rc.Authenticate(ctx, resp)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- errorsNew("rejected")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("%v (stats %+v)", err, rc.Stats())
	}
}

// TestWireV2CanceledContextLeavesConnUsable pins the v2 improvement
// over v1's deadline-poisoned connection: a canceled transaction
// reports CodeCanceled and later transactions on the same client
// still work.
func TestWireV2CanceledContextLeavesConnUsable(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := DialV2(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := wc.Authenticate(canceled, resp); CodeOf(err) != CodeCanceled {
		t.Fatalf("canceled transaction: err=%v, want CodeCanceled", err)
	}
	ok, err := wc.Authenticate(ctx, resp)
	if err != nil || !ok {
		t.Fatalf("post-cancel transaction: ok=%v err=%v", ok, err)
	}
}

// startWireProto spins up a wire server with an explicit protocol
// selection on a random localhost port.
func startWireProto(t *testing.T, srv *Server, cfg WireConfig) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWireServerConfig(srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ws.Serve(ctx, l)
	}()
	return l.Addr().String(), func() {
		ws.Close()
		<-done
	}
}

func TestWireV2AuthenticateEndToEnd(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := DialV2(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	for i := 0; i < 3; i++ {
		ok, err := wc.Authenticate(ctx, resp)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("genuine client rejected over v2 framing (round %d)", i)
		}
	}
}

func TestWireV2RemapEndToEnd(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := DialV2(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	oldKey := resp.Key()
	if err := wc.Remap(ctx, resp); err != nil {
		t.Fatal(err)
	}
	if resp.Key() == oldKey {
		t.Fatal("key not rotated over v2 framing")
	}
	ok, err := wc.Authenticate(ctx, resp)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("post-remap v2 authentication failed")
	}
}

func TestWireV2UnknownClientTypedError(t *testing.T) {
	srv, _ := wireFixture(t, 680)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := DialV2(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	ghost := NewResponder("ghost", NewSimDevice(errormap.NewMap(errormap.NewGeometry(64))), resp0Key())
	_, err = wc.Authenticate(ctx, ghost)
	if err == nil {
		t.Fatal("unknown client authenticated over v2")
	}
	// The taxonomy must survive the binary framing exactly as it
	// survives JSON: same code, same sentinel, same client id.
	if CodeOf(err) != CodeUnknownClient {
		t.Fatalf("v2 error code = %v, want CodeUnknownClient (err %v)", CodeOf(err), err)
	}
	if !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("v2 error %v does not satisfy errors.Is(ErrUnknownClient)", err)
	}
	var ae *AuthError
	if !errors.As(err, &ae) || ae.ClientID != "ghost" {
		t.Fatalf("v2 error %v lost the client id", err)
	}
}

// TestWireV2Pipelined drives one shared v2 connection from many
// goroutines at once: each transaction rides its own stream, so this
// is the pipelining path end to end (demultiplexer, out-of-order
// verdicts, shared writer) under the race detector.
func TestWireV2Pipelined(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	wc, err := DialV2(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	const lanes, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, lanes)
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				ok, err := wc.Authenticate(ctx, resp)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- errorsNew("rejected")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWireNegotiationMatrix pins every client/server framing pairing.
func TestWireNegotiationMatrix(t *testing.T) {
	shortIdle := 200 * time.Millisecond

	t.Run("v1-client-auto-server", func(t *testing.T) {
		srv, resp := wireFixture(t, 680, 700)
		addr, stop := startWire(t, srv)
		defer stop()
		wc, err := Dial(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		if ok, err := wc.Authenticate(ctx, resp); err != nil || !ok {
			t.Fatalf("v1 on auto server: ok=%v err=%v", ok, err)
		}
	})

	t.Run("v2-client-auto-server", func(t *testing.T) {
		srv, resp := wireFixture(t, 680, 700)
		addr, stop := startWire(t, srv)
		defer stop()
		wc, err := DialV2(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		if ok, err := wc.Authenticate(ctx, resp); err != nil || !ok {
			t.Fatalf("v2 on auto server: ok=%v err=%v", ok, err)
		}
	})

	t.Run("v2-client-v2-server", func(t *testing.T) {
		srv, resp := wireFixture(t, 680, 700)
		addr, stop := startWireProto(t, srv, WireConfig{Proto: ProtoV2})
		defer stop()
		wc, err := DialV2(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		if ok, err := wc.Authenticate(ctx, resp); err != nil || !ok {
			t.Fatalf("v2 on v2-only server: ok=%v err=%v", ok, err)
		}
	})

	t.Run("v1-client-v2-server", func(t *testing.T) {
		srv, resp := wireFixture(t, 680, 700)
		addr, stop := startWireProto(t, srv, WireConfig{Proto: ProtoV2})
		defer stop()
		wc, err := Dial(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		// The v2-only server answers one typed v1 error and hangs up.
		_, err = wc.Authenticate(ctx, resp)
		if CodeOf(err) != CodeInvalidRequest {
			t.Fatalf("v1 on v2-only server: err=%v, want CodeInvalidRequest", err)
		}
	})

	t.Run("v2-client-v1-server", func(t *testing.T) {
		srv, resp := wireFixture(t, 680, 700)
		addr, stop := startWireProto(t, srv, WireConfig{Proto: ProtoV1, IdleTimeout: shortIdle})
		defer stop()
		wc, err := DialV2(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		// The v1-only server cannot parse binary frames and drops the
		// connection (at latest at its idle deadline); the client must
		// surface a retryable transport failure, not hang or panic.
		_, err = wc.Authenticate(ctx, resp)
		if err == nil {
			t.Fatal("v2 client on v1-only server unexpectedly succeeded")
		}
		if !Retryable(err) {
			t.Fatalf("v2-on-v1 failure %v must be retryable (transport, not verdict)", err)
		}
	})

	t.Run("garbage-preamble", func(t *testing.T) {
		srv, _ := wireFixture(t, 680)
		addr, stop := startWire(t, srv)
		defer stop()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// Starts with the v2 magic but is not the preamble: the server
		// can answer in no known framing and must hang up.
		if _, err := conn.Write([]byte{0xA7, 'X', 'Y', 'Z'}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("server answered a garbage preamble instead of hanging up")
		}
	})
}

// TestWireV2OutOfOrderCompletion proves streams complete out of
// order: a transaction opened first but answered last does not block
// a later stream's verdict. The test speaks raw frames so it controls
// exactly when each response is revealed.
func TestWireV2OutOfOrderCompletion(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWire(t, srv)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pre := wire.Preamble()
	if _, err := conn.Write(pre[:]); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	send := func(frame []byte) {
		t.Helper()
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	// readFor reads frames until one for the wanted stream arrives,
	// parking frames of other streams.
	parked := map[uint32]*wire.Buf{}
	readFor := func(stream uint32) *wire.Buf {
		t.Helper()
		if b, ok := parked[stream]; ok {
			delete(parked, stream)
			return b
		}
		for {
			b := wire.GetBuf()
			if err := wire.ReadFrameInto(br, b, 1<<20); err != nil {
				t.Fatal(err)
			}
			if b.Stream == stream {
				return b
			}
			parked[b.Stream] = b
		}
	}

	// Open stream 1 and 2, collect both challenges.
	send(wire.AppendClientID(nil, 1, wire.OpAuthenticate, string(resp.ID)))
	send(wire.AppendClientID(nil, 2, wire.OpAuthenticate, string(resp.ID)))
	var ch1, ch2 crp.Challenge
	b := readFor(1)
	if b.Op != wire.OpChallenge {
		t.Fatalf("stream 1: got %q, want challenge", b.Op)
	}
	if err := wire.DecodeChallenge(b.B, &ch1); err != nil {
		t.Fatal(err)
	}
	wire.PutBuf(b)
	b = readFor(2)
	if b.Op != wire.OpChallenge {
		t.Fatalf("stream 2: got %q, want challenge", b.Op)
	}
	if err := wire.DecodeChallenge(b.B, &ch2); err != nil {
		t.Fatal(err)
	}
	wire.PutBuf(b)

	// Answer stream 2 FIRST and demand its verdict while stream 1 is
	// still open and unanswered.
	r2, err := resp.Respond(&ch2)
	if err != nil {
		t.Fatal(err)
	}
	send(wire.AppendResponse(nil, 2, ch2.ID, &r2))
	b = readFor(2)
	if b.Op != wire.OpVerdict {
		t.Fatalf("stream 2: got %q, want verdict", b.Op)
	}
	v2f, err := wire.DecodeVerdict(b.B)
	wire.PutBuf(b)
	if err != nil {
		t.Fatal(err)
	}
	if !v2f.Accepted {
		t.Fatal("stream 2 (completed first) rejected")
	}

	// Now finish stream 1.
	r1, err := resp.Respond(&ch1)
	if err != nil {
		t.Fatal(err)
	}
	send(wire.AppendResponse(nil, 1, ch1.ID, &r1))
	b = readFor(1)
	if b.Op != wire.OpVerdict {
		t.Fatalf("stream 1: got %q, want verdict", b.Op)
	}
	v1f, err := wire.DecodeVerdict(b.B)
	wire.PutBuf(b)
	if err != nil {
		t.Fatal(err)
	}
	if !v1f.Accepted {
		t.Fatal("stream 1 (completed last) rejected")
	}
}

// TestWireV2StreamCapSheds pins the per-connection stream cap: the
// stream over the cap is answered unavailable while the connection
// and the streams under the cap keep working.
func TestWireV2StreamCapSheds(t *testing.T) {
	srv, resp := wireFixture(t, 680, 700)
	addr, stop := startWireProto(t, srv, WireConfig{MaxStreamsPerConn: 1})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pre := wire.Preamble()
	if _, err := conn.Write(pre[:]); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	// Stream 1 occupies the only slot (challenge unanswered).
	if _, err := conn.Write(wire.AppendClientID(nil, 1, wire.OpAuthenticate, string(resp.ID))); err != nil {
		t.Fatal(err)
	}
	b := wire.GetBuf()
	defer wire.PutBuf(b)
	if err := wire.ReadFrameInto(br, b, 1<<20); err != nil {
		t.Fatal(err)
	}
	if b.Stream != 1 || b.Op != wire.OpChallenge {
		t.Fatalf("stream 1: got stream %d op %q, want challenge", b.Stream, b.Op)
	}

	// Stream 2 must be shed with a retryable unavailable error.
	if _, err := conn.Write(wire.AppendClientID(nil, 2, wire.OpAuthenticate, string(resp.ID))); err != nil {
		t.Fatal(err)
	}
	eb := wire.GetBuf()
	defer wire.PutBuf(eb)
	if err := wire.ReadFrameInto(br, eb, 1<<20); err != nil {
		t.Fatal(err)
	}
	if eb.Stream != 2 || eb.Op != wire.OpError {
		t.Fatalf("stream 2: got stream %d op %q, want error", eb.Stream, eb.Op)
	}
	code, _, msg, err := wire.DecodeError(eb.B)
	if err != nil {
		t.Fatal(err)
	}
	shedErr := errorFromWire(ErrorCode(code), "", msg)
	if CodeOf(shedErr) != CodeUnavailable || !Retryable(shedErr) {
		t.Fatalf("stream shed error %v must be retryable unavailable", shedErr)
	}

	// The connection is still healthy: finish stream 1 normally.
	var ch crp.Challenge
	if err := wire.DecodeChallenge(b.B, &ch); err != nil {
		t.Fatal(err)
	}
	r1, err := resp.Respond(&ch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire.AppendResponse(nil, 1, ch.ID, &r1)); err != nil {
		t.Fatal(err)
	}
	vb := wire.GetBuf()
	defer wire.PutBuf(vb)
	if err := wire.ReadFrameInto(br, vb, 1<<20); err != nil {
		t.Fatal(err)
	}
	if vb.Stream != 1 || vb.Op != wire.OpVerdict {
		t.Fatalf("stream 1 verdict: got stream %d op %q", vb.Stream, vb.Op)
	}
	v, err := wire.DecodeVerdict(vb.B)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Fatal("stream 1 rejected after stream 2 was shed")
	}
}
