package auth

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/errormap"
	"repro/internal/rng"
)

// FuzzWireServer feeds arbitrary bytes — truncated frames, oversized
// lines, malformed JSON, half-valid transactions — straight into the
// server's per-connection handler. The handler must never panic, hang
// past its idle deadline, or leak the goroutine; hostile input may
// only ever produce typed error responses or a dropped connection.
func FuzzWireServer(f *testing.F) {
	f.Add([]byte("{\"type\":\"authenticate\",\"client_id\":\"fuzz-dev\"}\n"))
	f.Add([]byte("{\"type\":\"authenticate\",\"client_id\":\"fuzz-dev\"}\n{\"type\":\"response\",\"challenge_id\":1}\n"))
	f.Add([]byte("{\"type\":\"remap\",\"client_id\":\"fuzz-dev\"}\n"))
	f.Add([]byte("{\"type\":\"authenticate\",\"client_id\":\"fuz")) // truncated mid-frame
	f.Add([]byte("{\"type\":\"bogus\"}\n"))
	f.Add([]byte("not json at all\n\x00\xff\xfe\n"))
	f.Add(make([]byte, 1<<12)) // a page of zeros: oversized unterminated line
	f.Add([]byte("\n\n\n"))

	g := errormap.NewGeometry(512)
	m := errormap.NewMap(g)
	r := rng.New(3)
	m.AddPlane(680, errormap.RandomPlane(g, 20, r))
	srv := NewServer(DefaultConfig(), 5)
	if _, err := srv.Enroll(ctx, "fuzz-dev", m); err != nil {
		f.Fatal(err)
	}
	ws, err := NewWireServerConfig(srv, WireConfig{
		MaxMessageBytes: 1 << 16,
		IdleTimeout:     50 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			ws.handle(context.Background(), server)
			server.Close()
		}()
		// Drain whatever the handler writes so the synchronous pipe
		// cannot deadlock on a response.
		go io.Copy(io.Discard, client)
		client.SetDeadline(time.Now().Add(2 * time.Second))
		client.Write(data)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("handler did not return; idle deadline failed to fire")
		}
		client.Close()
	})
}
