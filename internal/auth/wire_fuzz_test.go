package auth

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/errormap"
	"repro/internal/rng"
	"repro/internal/wire"
)

// FuzzWireServer feeds arbitrary bytes — truncated frames, oversized
// lines, malformed JSON, half-valid transactions — straight into the
// server's per-connection handler. The handler must never panic, hang
// past its idle deadline, or leak the goroutine; hostile input may
// only ever produce typed error responses or a dropped connection.
func FuzzWireServer(f *testing.F) {
	f.Add([]byte("{\"type\":\"authenticate\",\"client_id\":\"fuzz-dev\"}\n"))
	f.Add([]byte("{\"type\":\"authenticate\",\"client_id\":\"fuzz-dev\"}\n{\"type\":\"response\",\"challenge_id\":1}\n"))
	f.Add([]byte("{\"type\":\"remap\",\"client_id\":\"fuzz-dev\"}\n"))
	f.Add([]byte("{\"type\":\"authenticate\",\"client_id\":\"fuz")) // truncated mid-frame
	f.Add([]byte("{\"type\":\"bogus\"}\n"))
	f.Add([]byte("not json at all\n\x00\xff\xfe\n"))
	f.Add(make([]byte, 1<<12)) // a page of zeros: oversized unterminated line
	f.Add([]byte("\n\n\n"))
	// The handler negotiates framing from the first bytes, so raw
	// fuzz input also exercises the v2 accept path: exact preamble,
	// preamble plus garbage, torn preamble, and magic-but-not-preamble.
	pre := wire.Preamble()
	f.Add(pre[:])
	f.Add(append(pre[:], wire.AppendClientID(nil, 1, wire.OpAuthenticate, "fuzz-dev")...))
	f.Add(append(pre[:], 0xFF, 0xFF, 0xFF))
	f.Add(pre[:2])
	f.Add([]byte{0xA7, 'X', 'Y', 'Z'})

	g := errormap.NewGeometry(512)
	m := errormap.NewMap(g)
	r := rng.New(3)
	m.AddPlane(680, errormap.RandomPlane(g, 20, r))
	srv := NewServer(DefaultConfig(), 5)
	if _, err := srv.Enroll(ctx, "fuzz-dev", m); err != nil {
		f.Fatal(err)
	}
	ws, err := NewWireServerConfig(srv, WireConfig{
		MaxMessageBytes: 1 << 16,
		IdleTimeout:     50 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			ws.handle(context.Background(), server)
			server.Close()
		}()
		// Drain whatever the handler writes so the synchronous pipe
		// cannot deadlock on a response.
		go io.Copy(io.Discard, client)
		client.SetDeadline(time.Now().Add(2 * time.Second))
		client.Write(data)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("handler did not return; idle deadline failed to fire")
		}
		client.Close()
	})
}

// FuzzWireServerV2 is the structured v2 fuzzer: fuzz bytes drive a
// frame generator that produces mutated stream ids, unknown opcodes,
// truncated payloads, and interleaved streams against a server with
// NO enrolled clients. Invariants: the demultiplexer never panics or
// hangs, every error frame carries a non-empty taxonomy code that
// reconstructs a typed *AuthError, and no verdict ever accepts — with
// nothing enrolled, an accepted verdict is a forged authentication.
func FuzzWireServerV2(f *testing.F) {
	// Seed corpus: a valid open, open+continuation, two interleaved
	// streams, a duplicate stream id, an unknown opcode, truncation.
	f.Add([]byte{1, 1, 8, 'f', 'u', 'z', 'z', '-', 'd', 'e', 'v', 0})
	f.Add([]byte{1, 1, 4, 'a', 'b', 'c', 'd', 3, 1, 2, 0, 0})
	f.Add([]byte{1, 1, 2, 'a', 'b', 1, 2, 2, 'c', 'd', 3, 1, 1, 0, 3, 2, 1, 0})
	f.Add([]byte{1, 1, 1, 'x', 1, 1, 1, 'y'})
	f.Add([]byte{11, 0, 4, 1, 2, 3, 4})
	f.Add([]byte{0x81, 1, 30, 'p', 'a', 'r', 't'})
	// Replication opcodes (10-16) arriving on the client-facing port:
	// a hello, a shipped record, an ack, a heartbeat, and a
	// propose/grant pair — all must be refused as protocol errors, not
	// demultiplexed into the replication state machine.
	f.Add([]byte{10, 0, 12, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 7})
	f.Add([]byte{12, 0, 16, 0, 0, 0, 0, 0, 0, 0, 9, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{13, 0, 8, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add([]byte{14, 0, 16, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 40})
	f.Add([]byte{15, 1, 24, 5, 'd', 'e', 'v', '-', '0', 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 2, 168, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{16, 1, 8, 0, 0, 0, 0, 0, 0, 0, 3, 11, 0, 40})

	srv := NewServer(DefaultConfig(), 9) // nothing enrolled
	ws, err := NewWireServerConfig(srv, WireConfig{
		MaxMessageBytes: 1 << 16,
		IdleTimeout:     50 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Generate up to 32 frames from the fuzz bytes. Stream ids are
		// folded into a small space so duplicates and interleavings
		// happen constantly; the high bit of the op byte truncates the
		// frame mid-payload.
		pre := wire.Preamble()
		out := pre[:]
		for n := 0; len(data) >= 3 && n < 32; n++ {
			opByte, streamByte, lenByte := data[0], data[1], data[2]
			data = data[3:]
			plen := int(lenByte) % 64
			if plen > len(data) {
				plen = len(data)
			}
			payload := data[:plen]
			data = data[plen:]
			// %18 covers every defined opcode (replication included,
			// 10-16) plus one undefined value above the table.
			frame := wire.AppendRaw(nil, uint32(streamByte%4), wire.Opcode(opByte%18), payload)
			if opByte&0x80 != 0 && len(frame) > wire.HeaderLen {
				frame = frame[:wire.HeaderLen+len(frame)%wire.HeaderLen]
			}
			out = append(out, frame...)
		}

		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			ws.handle(context.Background(), server)
			server.Close()
		}()
		// Validate every frame the server emits while draining it.
		violation := make(chan string, 1)
		go func() {
			br := bufio.NewReader(client)
			b := wire.GetBuf()
			defer wire.PutBuf(b)
			for {
				if err := wire.ReadFrameInto(br, b, 1<<20); err != nil {
					return // EOF/closed pipe: server hung up
				}
				switch b.Op {
				case wire.OpError:
					code, _, msg, derr := wire.DecodeError(b.B)
					if derr != nil {
						sendViolation(violation, "undecodable error frame: "+derr.Error())
						return
					}
					if code == "" {
						sendViolation(violation, "error frame without taxonomy code: "+msg)
						return
					}
					var ae *AuthError
					if !errors.As(errorFromWire(ErrorCode(code), "", msg), &ae) {
						sendViolation(violation, "error frame did not reconstruct *AuthError: "+code)
						return
					}
				case wire.OpVerdict:
					v, derr := wire.DecodeVerdict(b.B)
					if derr != nil {
						sendViolation(violation, "undecodable verdict frame: "+derr.Error())
						return
					}
					if v.Accepted {
						sendViolation(violation, "forged accept: verdict accepted with nothing enrolled")
						return
					}
				}
			}
		}()
		client.SetDeadline(time.Now().Add(2 * time.Second))
		client.Write(out)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("v2 handler did not return; idle deadline failed to fire")
		}
		client.Close()
		select {
		case v := <-violation:
			t.Fatal(v)
		default:
		}
	})
}

// sendViolation reports the first invariant violation without
// blocking the validator goroutine.
func sendViolation(ch chan string, msg string) {
	select {
	case ch <- msg:
	default:
	}
}
