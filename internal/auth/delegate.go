package auth

import (
	"context"
	"hash/fnv"

	"repro/internal/crp"
	"repro/internal/errormap"
)

// Delegated challenge issuance is the follower read-scaling protocol:
// a follower samples a challenge against its replicated state without
// consuming anything, the primary validates the sample, burns the
// pairs in the authoritative registry and journals the burn (which
// then replicates back), and the follower installs the pending
// challenge under the primary-assigned id. The expensive work — pair
// sampling, logical-field distance transforms, expected-response
// HMACs, and the eventual verification — all runs on the follower;
// the primary's share is a short critical section plus one journaled
// record. The no-reuse invariant stays global because only the
// primary ever consumes.
//
// A proposal races two things, both detected: a concurrent challenge
// consuming the same pair (the primary refuses; the follower
// resamples) and a key rotation (the key fingerprint mismatches on
// the primary or at commit time; the transaction aborts).

// DelegatedProposal is a follower-sampled challenge awaiting primary
// approval: logical coordinates for the client, canonical physical
// pairs for the registry, and a fingerprint of the remap key the
// sample was drawn under.
type DelegatedProposal struct {
	Logical []crp.PairBit
	Phys    []crp.PairBit
	KeySum  uint64
}

// keySumLocked fingerprints the client's current remap key for
// staleness detection (not secrecy — the fingerprint never leaves the
// replication link). Callers hold rec.mu.
func keySumLocked(rec *clientRecord) uint64 {
	h := fnv.New64a()
	h.Write(rec.key[:])
	return h.Sum64()
}

// SampleChallenge draws the pairs of a single-voltage challenge
// without consuming, journaling, or installing anything: the
// follower's half of delegated issuance. The sample avoids pairs the
// local registry replica already saw, so proposals rarely conflict on
// the primary.
func (s *Server) SampleChallenge(ctx context.Context, id ClientID) (*DelegatedProposal, error) {
	if err := ctxErr(ctx, id); err != nil {
		return nil, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	vs := authVoltagesLocked(rec)
	if len(vs) == 0 {
		return nil, authErrf(CodeInvalidRequest, id, "auth: no non-reserved voltage planes enrolled")
	}
	vdd := vs[s.randIntn(len(vs))]
	perm := rec.permLocked(vdd)
	g := rec.physMap.Geometry()

	n := s.cfg.ChallengeBits
	prop := &DelegatedProposal{
		Logical: make([]crp.PairBit, n),
		Phys:    make([]crp.PairBit, n),
		KeySum:  keySumLocked(rec),
	}
	physKeys := make([]uint64, n)
	const maxRetries = 64
	for i := 0; i < n; i++ {
		ok := false
		for attempt := 0; attempt < maxRetries; attempt++ {
			a, b := s.randIntn2(g.Lines)
			if a == b {
				continue
			}
			pa, pb := perm.Unmap(a), perm.Unmap(b)
			phys := crp.PairBit{A: pa, B: pb, VddMV: vdd}
			if rec.registry.IsUsed(phys) {
				continue
			}
			key := pairFingerprint(phys)
			dup := false
			for j := 0; j < i; j++ {
				if physKeys[j] == key {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			prop.Logical[i] = crp.PairBit{A: a, B: b, VddMV: vdd}
			prop.Phys[i] = phys
			physKeys[i] = key
			ok = true
			break
		}
		if !ok {
			return nil, authErr(CodeExhausted, id, ErrExhausted)
		}
	}
	return prop, nil
}

// ApproveBurn is the primary's half of delegated issuance: validate a
// proposal against the authoritative registry and key, consume its
// pairs, journal the burn, and assign the challenge id. The burn
// record replicates to every follower through the ordinary log
// stream, converging their registry replicas.
func (s *Server) ApproveBurn(ctx context.Context, id ClientID, phys []crp.PairBit, keySum uint64) (uint64, error) {
	if err := ctxErr(ctx, id); err != nil {
		return 0, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return 0, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if keySumLocked(rec) != keySum {
		return 0, authErrf(CodeInvalidRequest, id, "auth: proposal sampled under a rotated key")
	}
	// Pairwise-distinct and unused, or the whole proposal is refused —
	// the follower resamples against its (by then fresher) replica.
	seen := make(map[uint64]struct{}, len(phys))
	for _, p := range phys {
		if rec.registry.IsUsed(p) {
			return 0, authErrf(CodeInvalidRequest, id, "auth: proposal pair already consumed")
		}
		fp := pairFingerprint(p)
		if _, dup := seen[fp]; dup {
			return 0, authErrf(CodeInvalidRequest, id, "auth: proposal repeats a pair")
		}
		seen[fp] = struct{}{}
	}
	if !rec.registry.Consume(&crp.Challenge{Bits: phys}) {
		return 0, authErr(CodeExhausted, id, ErrExhausted)
	}
	if s.journal != nil {
		// Same discipline as issueWithVddsLocked: journal before the
		// grant can leave the server; on failure the pairs stay burned
		// in memory (nothing replayable was issued).
		err := s.journal.JournalBurn(string(id), phys, rec.nextID+1, rec.crpsSinceRemap+len(phys))
		if err != nil {
			return 0, unavailableErr(id, err)
		}
	}
	chID := rec.nextID
	rec.nextID++
	rec.crpsSinceRemap += len(phys)
	s.stats.issued.Add(1)
	return chID, nil
}

// CommitDelegated is the follower's closing half: after the primary
// granted challengeID for prop, mark the pairs in the local replica,
// precompute the expected response on the local logical planes, and
// install the pending challenge so verification runs entirely on the
// follower. The replicated burn record arriving later re-marks the
// same pairs idempotently.
func (s *Server) CommitDelegated(ctx context.Context, id ClientID, challengeID uint64, prop *DelegatedProposal) (*crp.Challenge, error) {
	if err := ctxErr(ctx, id); err != nil {
		return nil, err
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, authErrf(CodeUnknownClient, id, "%w: %q", ErrUnknownClient, id)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if keySumLocked(rec) != prop.KeySum {
		return nil, authErrf(CodeInvalidRequest, id, "auth: key rotated between sample and grant")
	}
	rec.registry.Mark(prop.Phys)
	ch := &crp.Challenge{ID: challengeID, Bits: prop.Logical}
	expected := crp.NewResponse(len(ch.Bits))
	var field *errormap.DistanceField
	lastVdd := -1
	for i, b := range ch.Bits {
		if b.VddMV != lastVdd {
			f, err := logicalFieldLocked(id, rec, b.VddMV)
			if err != nil {
				return nil, err
			}
			field = f
			lastVdd = b.VddMV
		}
		da, fa := field.DistLine(b.A), field != nil
		db, fb := field.DistLine(b.B), field != nil
		expected.SetBit(i, crp.ResponseBit(da, fa, db, fb))
	}
	rec.pending[ch.ID] = pendingChallenge{ch: ch, expected: expected}
	if challengeID >= rec.nextID {
		rec.nextID = challengeID + 1
	}
	rec.crpsSinceRemap += len(ch.Bits)
	return cloneChallenge(ch), nil
}
