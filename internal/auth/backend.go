package auth

import (
	"context"

	"repro/internal/crp"
)

// TxBackend is the operation-level seam between the wire transports
// (v1 JSON and v2 binary) and whatever executes transactions. The
// single-node server plugs in directly via localBackend; a cluster
// router implements the same four operations by consistent-hashing
// the client id and forwarding to the owning node. The seam sits at
// the operation level — challenge out, response in — so both framings
// share one forwarding implementation and a forwarder never needs the
// session key: the verdict carries the derived confirmation tag
// instead.
type TxBackend interface {
	// BeginAuth issues a challenge for one authentication transaction.
	BeginAuth(ctx context.Context, id ClientID) (*crp.Challenge, error)
	// FinishAuth verifies the response to a challenge issued by
	// BeginAuth and returns the verdict.
	FinishAuth(ctx context.Context, id ClientID, challengeID uint64, resp crp.Response) (AuthVerdict, error)
	// BeginRemapTx starts one key-update transaction.
	BeginRemapTx(ctx context.Context, id ClientID) (*RemapRequest, error)
	// FinishRemapTx completes the key-update begun by BeginRemapTx.
	FinishRemapTx(ctx context.Context, id ClientID, success bool) error
}

// AuthVerdict is a transport-neutral authentication outcome: what the
// wire verdict frame carries, independent of framing. Confirm is
// HMAC(sessionKey, confirm label) — the session key itself never
// leaves the node that verified.
type AuthVerdict struct {
	Accepted     bool
	RemapAdvised bool
	// HasConfirm distinguishes an absent tag from a zero tag.
	HasConfirm bool
	Confirm    [32]byte
}

// LocalBackend returns the TxBackend that executes transactions
// directly against srv — the same backend a WireServer built from a
// *Server uses. Exported so a cluster node can serve its primary role
// (or verify follower-held challenges) through the seam.
func LocalBackend(srv *Server) TxBackend { return localBackend{auth: srv} }

// localBackend runs transactions against an in-process Server; the
// default backend of every WireServer built around a *Server.
type localBackend struct {
	auth *Server
}

func (lb localBackend) BeginAuth(ctx context.Context, id ClientID) (*crp.Challenge, error) {
	return lb.auth.IssueChallenge(ctx, id)
}

func (lb localBackend) FinishAuth(ctx context.Context, id ClientID, challengeID uint64, resp crp.Response) (AuthVerdict, error) {
	ok, sessionKey, err := lb.auth.VerifySession(ctx, id, challengeID, resp)
	if err != nil {
		return AuthVerdict{}, err
	}
	v := AuthVerdict{Accepted: ok}
	if ok {
		v.HasConfirm = true
		v.Confirm = confirmTagRaw(sessionKey)
		v.RemapAdvised = lb.auth.NeedsRemap(id)
	}
	return v, nil
}

func (lb localBackend) BeginRemapTx(ctx context.Context, id ClientID) (*RemapRequest, error) {
	return lb.auth.BeginRemap(ctx, id)
}

func (lb localBackend) FinishRemapTx(ctx context.Context, id ClientID, success bool) error {
	return lb.auth.CompleteRemap(ctx, id, success)
}
