package auth

import (
	"context"
	"time"
)

// Deadline budgets: a caller's context deadline is a budget the retry
// loop spends across its attempts, not a per-attempt timeout. Carving
// the remaining time evenly across the attempts still owed keeps the
// last attempt from inheriting a nearly-expired deadline (which would
// make every final retry a guaranteed timeout), while the floor keeps
// an over-subscribed budget from producing attempts too short to
// complete a round trip.

// DeadlineBudget splits a context's remaining time across retry
// attempts. The zero value is unusable; fill every field or use
// WithBudgetDefaults.
type DeadlineBudget struct {
	// Attempts is the total attempts the budget is split across.
	Attempts int
	// Floor is the minimum per-attempt share: even when the remaining
	// budget divided by the attempts left is smaller, an attempt is
	// carved at least this long, so the budget arithmetic never
	// produces attempts too short to complete a round trip. The
	// caller's own deadline still caps the result — a genuinely
	// exhausted budget expires the attempt and the caller together,
	// which is how the retry loop tells budget exhaustion (give up)
	// from a single slow attempt (retry elsewhere).
	Floor time.Duration
	// Default is the per-attempt allowance when the caller's context
	// has no deadline at all. It is what keeps a hung peer from
	// pinning a goroutine forever even for callers that never set
	// deadlines.
	Default time.Duration
}

// WithBudgetDefaults fills zero fields with workable defaults: 3
// attempts, a 50 ms floor, a 2 s default allowance.
func (d DeadlineBudget) WithBudgetDefaults() DeadlineBudget {
	if d.Attempts == 0 {
		d.Attempts = 3
	}
	if d.Floor == 0 {
		d.Floor = 50 * time.Millisecond
	}
	if d.Default == 0 {
		d.Default = 2 * time.Second
	}
	return d
}

// Carve derives the context for one attempt: the caller's remaining
// time divided by the attempts still owed (attemptsLeft >= 1), never
// below Floor, or Default when ctx carries no deadline. The returned
// cancel must be called when the attempt finishes.
func (d DeadlineBudget) Carve(ctx context.Context, attemptsLeft int) (context.Context, context.CancelFunc) {
	if attemptsLeft < 1 {
		attemptsLeft = 1
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithTimeout(ctx, d.Default)
	}
	share := time.Until(dl) / time.Duration(attemptsLeft)
	if share < d.Floor {
		share = d.Floor
	}
	return context.WithTimeout(ctx, share)
}
