package auth

import (
	"sort"
	"sync"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/mapkey"
)

// pendingChallenge is an issued, not-yet-verified challenge.
type pendingChallenge struct {
	ch       *crp.Challenge
	expected crp.Response
}

// remapState tracks an in-flight key update.
type remapState struct {
	newKey mapkey.Key
}

// clientRecord is the per-client enrollment state. The record owns its
// own lock: operations on different clients never contend, which is
// what lets the server scale across a fleet (per-client state never
// crosses records).
type clientRecord struct {
	// mu guards every field below. Store implementations hand out
	// *clientRecord pointers; callers lock the record for the duration
	// of the per-client operation.
	mu sync.Mutex

	physMap  *errormap.Map
	key      mapkey.Key
	reserved map[int]bool
	registry *crp.Registry
	pending  map[uint64]pendingChallenge
	nextID   uint64
	remap    *remapState
	// crpsSinceRemap counts challenge bits issued under the current
	// key, driving the rotation advice.
	crpsSinceRemap int

	// logicalFields caches logical-plane distance fields per voltage;
	// invalidated on key rotation.
	logicalFields map[int]*errormap.DistanceField
	// perms caches the per-voltage keyed permutations under the
	// current key; invalidated on key rotation together with
	// logicalFields.
	perms map[int]*mapkey.Permutation
}

// newClientRecord builds a fresh record around an enrollment map.
func newClientRecord(physMap *errormap.Map, key mapkey.Key, reserved map[int]bool) *clientRecord {
	return &clientRecord{
		physMap:       physMap,
		key:           key,
		reserved:      reserved,
		registry:      crp.NewRegistryLines(physMap.Geometry().Lines),
		pending:       make(map[uint64]pendingChallenge),
		logicalFields: make(map[int]*errormap.DistanceField),
		perms:         make(map[int]*mapkey.Permutation),
	}
}

// permLocked returns (building and caching) the keyed permutation for the
// voltage under the current key. Callers hold rec.mu.
func (rec *clientRecord) permLocked(vddMV int) *mapkey.Permutation {
	if p, ok := rec.perms[vddMV]; ok {
		return p
	}
	p := mapkey.NewPermutation(mapkey.PlaneKey(rec.key, vddMV), rec.physMap.Geometry().Lines)
	rec.perms[vddMV] = p
	return p
}

// rotateKeyLocked installs a new key and invalidates every key-derived
// cache. Callers hold rec.mu.
func (rec *clientRecord) rotateKeyLocked(key mapkey.Key) {
	rec.key = key
	rec.logicalFields = make(map[int]*errormap.DistanceField)
	rec.perms = make(map[int]*mapkey.Permutation)
	rec.crpsSinceRemap = 0
}

// ClientStore owns the lifecycle of clientRecords: lookup, creation,
// deletion, and whole-database snapshot/replace for persistence. A
// store only synchronises the id→record map itself; the records it
// hands out carry their own locks, so per-client work on different
// clients proceeds in parallel regardless of the store's internal
// sharding.
//
// Implementations must be safe for concurrent use.
type ClientStore interface {
	// Get returns the record for id, or false if the id is unknown.
	Get(id ClientID) (*clientRecord, bool)
	// Create installs rec under id if absent and reports whether it
	// was installed (false: the id already exists, rec is discarded).
	Create(id ClientID, rec *clientRecord) bool
	// Delete removes id and reports whether it existed.
	Delete(id ClientID) bool
	// Len counts enrolled clients.
	Len() int
	// IDs lists enrolled clients in sorted order.
	IDs() []ClientID
	// Range calls fn for every record until fn returns false. The
	// iteration order is unspecified; fn must not call back into the
	// store.
	Range(fn func(id ClientID, rec *clientRecord) bool)
	// ReplaceAll atomically swaps the entire database (LoadState).
	ReplaceAll(clients map[ClientID]*clientRecord)
}

// defaultStoreShards is the shard count used when Config.StoreShards
// is zero: enough to make shard-lock collisions rare at realistic
// core counts, small enough to be free for tiny fleets.
const defaultStoreShards = 32

// shardedStore is the in-memory ClientStore: N shards keyed by FNV-1a
// of the ClientID, each shard a map under its own RWMutex. Challenge
// issue and verify for different clients take only a read lock on one
// shard plus the per-record lock, so they proceed in parallel.
type shardedStore struct {
	shards []storeShard
}

type storeShard struct {
	mu      sync.RWMutex
	clients map[ClientID]*clientRecord
}

// newShardedStore builds a store with n shards (n < 1 uses the
// default).
func newShardedStore(n int) *shardedStore {
	if n < 1 {
		n = defaultStoreShards
	}
	s := &shardedStore{shards: make([]storeShard, n)}
	for i := range s.shards {
		s.shards[i].clients = make(map[ClientID]*clientRecord)
	}
	return s
}

// shardIndexFor hashes the id with FNV-1a onto a shard index.
func (s *shardedStore) shardIndexFor(id ClientID) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

func (s *shardedStore) shardFor(id ClientID) *storeShard {
	return &s.shards[s.shardIndexFor(id)]
}

func (s *shardedStore) Get(id ClientID) (*clientRecord, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	rec, ok := sh.clients[id]
	sh.mu.RUnlock()
	return rec, ok
}

func (s *shardedStore) Create(id ClientID, rec *clientRecord) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.clients[id]; dup {
		return false
	}
	sh.clients[id] = rec
	return true
}

func (s *shardedStore) Delete(id ClientID) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.clients[id]; !ok {
		return false
	}
	delete(sh.clients, id)
	return true
}

func (s *shardedStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.clients)
		sh.mu.RUnlock()
	}
	return n
}

func (s *shardedStore) IDs() []ClientID {
	var out []ClientID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.clients {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *shardedStore) Range(fn func(id ClientID, rec *clientRecord) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		// Snapshot the shard under the read lock, call fn outside it,
		// so fn may lock records without holding the shard lock.
		sh.mu.RLock()
		snapshot := make(map[ClientID]*clientRecord, len(sh.clients))
		for id, rec := range sh.clients {
			snapshot[id] = rec
		}
		sh.mu.RUnlock()
		for id, rec := range snapshot {
			if !fn(id, rec) {
				return
			}
		}
	}
}

func (s *shardedStore) ReplaceAll(clients map[ClientID]*clientRecord) {
	buckets := make([]map[ClientID]*clientRecord, len(s.shards))
	for i := range buckets {
		buckets[i] = make(map[ClientID]*clientRecord)
	}
	for id, rec := range clients {
		buckets[s.shardIndexFor(id)][id] = rec
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.clients = buckets[i]
		sh.mu.Unlock()
	}
}

var _ ClientStore = (*shardedStore)(nil)
