package auth

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/fault"
	"repro/internal/rng"
)

// BenchmarkWireTxPerConn measures authentication transactions per
// second over ONE TCP connection — the number the framing actually
// changes. v1 is lock-step JSON, so one connection is one transaction
// at a time; v2 multiplexes depth concurrent streams over the same
// connection and batches frame writes, so depth>1 amortises both the
// codec and the syscalls.
//
// The local/* variants run over raw loopback and isolate per-
// transaction CPU (codec + framing + auth core). The rtt=1ms/*
// variants route the client through a fault.DelayConn that models
// 1 ms of round-trip propagation — the regime the framing was built
// for: lock-step v1 pays the full RTT per transaction, while v2
// keeps depth transactions in flight and hides it.
//
// Challenge pairs burn forever (the no-reuse registry), so CI runs
// this with a fixed -benchtime iteration count rather than wall time;
// scripts/bench_wire.sh regenerates BENCH_wire.json from it.
func BenchmarkWireTxPerConn(b *testing.B) {
	b.Run("local/v1/depth=1", func(b *testing.B) { benchWireTx(b, ProtoV1, 1, 0) })
	b.Run("local/v2/depth=1", func(b *testing.B) { benchWireTx(b, ProtoV2, 1, 0) })
	b.Run("local/v2/depth=8", func(b *testing.B) { benchWireTx(b, ProtoV2, 8, 0) })
	b.Run("local/v2/depth=64", func(b *testing.B) { benchWireTx(b, ProtoV2, 64, 0) })
	const rtt = time.Millisecond
	b.Run("rtt=1ms/v1/depth=1", func(b *testing.B) { benchWireTx(b, ProtoV1, 1, rtt) })
	b.Run("rtt=1ms/v2/depth=8", func(b *testing.B) { benchWireTx(b, ProtoV2, 8, rtt) })
	b.Run("rtt=1ms/v2/depth=16", func(b *testing.B) { benchWireTx(b, ProtoV2, 16, rtt) })
	b.Run("rtt=1ms/v2/depth=64", func(b *testing.B) { benchWireTx(b, ProtoV2, 64, rtt) })
}

// benchLines is the bench geometry: 2048 lines keeps the no-reuse
// registry in its dense-bitset representation (2.1M pairs, 256 KiB
// per plane) so burn bookkeeping stays cache-resident even with 64
// lanes live. Capacity is ample — 2000 iterations of 128-bit
// challenges burn ~12% of one plane's pair space on the single-lane
// variants and a fraction of that per lane elsewhere.
const benchLines = 2048

func benchWireTx(b *testing.B, proto Proto, depth int, rtt time.Duration) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.ChallengeBits = 128
	// A time-based -benchtime (e.g. `make bench`) can ramp b.N past
	// the pair space of the busiest lane's registry; burned pairs
	// never come back, so the run would die with ErrExhausted rather
	// than measure anything. Keep the heaviest lane under half its
	// plane's budget.
	maxPerLane := int(crp.PossibleCRPs(benchLines)) / cfg.ChallengeBits / 2
	if b.N/depth+1 > maxPerLane {
		b.Skipf("b.N=%d would exhaust the CRP registry; use a fixed -benchtime (scripts/bench_wire.sh)", b.N)
	}
	// Never advise a remap mid-benchmark: a rotation would splice a
	// second transaction into the timed loop.
	cfg.RemapAfterCRPs = 1 << 31
	srv := NewServer(cfg, 99)

	// One enrolled device per lane: lanes never contend on a device's
	// field cache, so the wire is the only shared resource. See
	// benchLines for the geometry choice.
	g := errormap.NewGeometry(benchLines)
	r := rng.New(1234)
	responders := make([]*Responder, depth)
	for i := range responders {
		m := errormap.NewMap(g)
		m.AddPlane(680, errormap.RandomPlane(g, 100, r))
		id := ClientID(fmt.Sprintf("bench-%02d", i))
		key, err := srv.Enroll(ctx, id, m)
		if err != nil {
			b.Fatal(err)
		}
		responders[i] = NewResponder(id, NewSimDevice(m), key)
	}

	ws, err := NewWireServerConfig(srv, WireConfig{
		MaxTransactionsPerConn: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ws.Serve(ctx, l)
	defer ws.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	nc := net.Conn(conn)
	if rtt > 0 {
		// One delayed direction gives the full round-trip time: the
		// return path is direct.
		nc = fault.NewDelayConn(conn, rtt)
	}
	var wc *WireClient
	if proto == ProtoV2 {
		wc, err = NewWireClientV2(nc)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		wc = NewWireClient(nc)
	}
	defer wc.Close()

	// Warm every lane outside the timer: the first transaction per
	// device computes and caches its logical distance field.
	for _, r := range responders {
		if ok, err := wc.Authenticate(ctx, r); err != nil || !ok {
			b.Fatalf("warmup: ok=%v err=%v", ok, err)
		}
	}

	b.ResetTimer()
	errs := make(chan error, depth)
	var wg sync.WaitGroup
	for lane := 0; lane < depth; lane++ {
		n := b.N / depth
		if lane < b.N%depth {
			n++
		}
		wg.Add(1)
		go func(lane, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ok, err := wc.Authenticate(ctx, responders[lane])
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- fmt.Errorf("lane %d: genuine device rejected", lane)
					return
				}
			}
		}(lane, n)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}
