package authenticache_test

import (
	"bytes"
	"net"
	"testing"

	authenticache "repro"
	"repro/internal/variation"
)

// TestFullLifecycle drives the complete production story through the
// public API with the firmware-backed device: manufacture → enroll
// (multi-plane, one reserved) → authenticate over TCP → key update →
// authenticate again → server restart from persisted state →
// authenticate under a temperature excursion.
func TestFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("full lifecycle builds a firmware-backed chip")
	}
	chip, err := authenticache.NewChip(authenticache.ChipConfig{Seed: 1001, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	levels := chip.AuthVoltagesMV(3, 10)
	emap, err := chip.Enroll(levels)
	if err != nil {
		t.Fatal(err)
	}

	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 64
	srv := authenticache.NewServer(cfg, 3)
	reserved := levels[len(levels)-1]
	key, err := srv.Enroll(ctx, "lifecycle", emap, reserved)
	if err != nil {
		t.Fatal(err)
	}
	device := authenticache.NewResponder("lifecycle", chip.Device(), key)

	// TCP transport.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := authenticache.NewWireServer(srv)
	go ws.Serve(ctx, l)
	defer ws.Close()
	wc, err := authenticache.Dial(ctx, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	ok, err := wc.Authenticate(ctx, device)
	if err != nil || !ok {
		t.Fatalf("initial TCP auth: ok=%v err=%v", ok, err)
	}

	// Key update over the wire.
	oldKey := device.Key()
	if err := wc.Remap(ctx, device); err != nil {
		t.Fatal(err)
	}
	if device.Key() == oldKey {
		t.Fatal("key unchanged after remap")
	}
	ok, err = wc.Authenticate(ctx, device)
	if err != nil || !ok {
		t.Fatalf("post-remap TCP auth: ok=%v err=%v", ok, err)
	}

	// Persist, restart into a fresh server, keep authenticating.
	var state bytes.Buffer
	if err := srv.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	srv2 := authenticache.NewServer(cfg, 4)
	if err := srv2.LoadState(&state); err != nil {
		t.Fatal(err)
	}
	ch, err := srv2.IssueChallenge(ctx, "lifecycle")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := device.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := srv2.Verify(ctx, "lifecycle", ch.ID, resp); !ok {
		t.Fatal("restored server rejected the rotated-key device")
	}

	// Multi-Vdd challenge on the restored server, hot silicon.
	chip.SetEnvironment(variation.Environment{DeltaT: 25})
	mch, err := srv2.IssueChallengeMulti(ctx, "lifecycle")
	if err != nil {
		t.Fatal(err)
	}
	if len(mch.Voltages()) < 2 {
		t.Fatalf("multi-Vdd challenge spans %v", mch.Voltages())
	}
	mresp, err := device.Respond(mch)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := srv2.Verify(ctx, "lifecycle", mch.ID, mresp); !ok {
		t.Fatal("hot chip rejected on multi-Vdd challenge after restart")
	}
}

// TestStolenKeyAcrossLifecycle: even after a remap, a stolen key on
// the wrong silicon fails.
func TestStolenKeyAcrossLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two firmware-backed chips")
	}
	genuine, err := authenticache.NewChip(authenticache.ChipConfig{Seed: 2001, CacheBytes: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	thief, err := authenticache.NewChip(authenticache.ChipConfig{Seed: 2002, CacheBytes: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	levels := genuine.AuthVoltagesMV(2, 10)
	emap, err := genuine.Enroll(levels)
	if err != nil {
		t.Fatal(err)
	}
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 64
	srv := authenticache.NewServer(cfg, 5)
	key, err := srv.Enroll(ctx, "target", emap)
	if err != nil {
		t.Fatal(err)
	}

	fake := authenticache.NewResponder("target", thief.Device(), key)
	ch, err := srv.IssueChallenge(ctx, "target")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := fake.Respond(ch)
	if err != nil {
		// The thief's voltage floor may sit above the victim's
		// challenge voltage — a rejection in itself.
		t.Skipf("thief chip aborted: %v", err)
	}
	if ok, _ := srv.Verify(ctx, "target", ch.ID, resp); ok {
		t.Fatal("stolen key + wrong silicon accepted")
	}
}
