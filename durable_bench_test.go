package authenticache_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	authenticache "repro"
	"repro/internal/crp"
)

// BenchmarkVerifyParallelWAL measures what journaling costs the hot
// issue→verify path: the no-journal baseline against a group-commit
// WAL at fsync-per-record (batch 1) and amortised batch sizes 8 and
// 64. Mirrors internal/auth's BenchmarkVerifyParallel: 64 enrolled
// clients, parallel traffic, a zero response driving the full verify
// path to a rejection (same cost as an acceptance).
func BenchmarkVerifyParallelWAL(b *testing.B) {
	run := func(b *testing.B, srv *authenticache.Server) {
		cfgIDs := make([]authenticache.ClientID, 64)
		for i := range cfgIDs {
			cfgIDs[i] = authenticache.ClientID(fmt.Sprintf("bench-dev-%d", i))
			if _, err := srv.Enroll(dctx, cfgIDs[i], durableTestMap(16384, 120, uint64(4242+i), 680)); err != nil {
				b.Fatal(err)
			}
		}
		// Warm the per-client logical-field caches so the steady state
		// is measured, not the one-time distance transforms.
		for _, id := range cfgIDs {
			ch, err := srv.IssueChallenge(dctx, id)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := srv.Verify(dctx, id, ch.ID, crp.NewResponse(len(ch.Bits))); err != nil {
				b.Fatal(err)
			}
		}
		var ctr int64
		// Eight concurrent appenders regardless of GOMAXPROCS: group
		// commit amortises fsync across whatever is in flight, and a
		// single-CPU box would otherwise serialise to one.
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := atomic.AddInt64(&ctr, 1)
				id := cfgIDs[int(i)%len(cfgIDs)]
				ch, err := srv.IssueChallenge(dctx, id)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := srv.Verify(dctx, id, ch.ID, crp.NewResponse(len(ch.Bits))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 64

	b.Run("nojournal", func(b *testing.B) {
		run(b, authenticache.NewServer(cfg, 99))
	})
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("wal-batch%d", batch), func(b *testing.B) {
			opt := authenticache.WALOptions{FlushBatch: batch}
			ds, err := authenticache.OpenDurableServer(b.TempDir(), cfg, 99, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer ds.Close()
			run(b, ds.Server)
		})
	}
}
