package authenticache_test

import (
	"fmt"

	authenticache "repro"
)

// The CRP budget of a cache is n(n-1)/2 unordered line pairs per
// voltage level (paper equation (10)); Table 1 divides it into a daily
// authentication allowance over a 10-year lifetime.
func Example() {
	lines4MB := (4 << 20) / 64
	fmt.Println("possible CRPs (4MB):", authenticache.PossibleCRPs(lines4MB))
	for _, bits := range []int{64, 512} {
		fmt.Printf("daily %d-bit authentications over 10 years: %d\n",
			bits, authenticache.DailyAuthentications(lines4MB, bits, 3650))
	}
	// Output:
	// possible CRPs (4MB): 2147450880
	// daily 64-bit authentications over 10 years: 9192
	// daily 512-bit authentications over 10 years: 1149
}

// Error maps project cache lines onto a near-square plane; a 4 MB
// cache of 64-byte lines becomes a 256x256 grid.
func ExampleNewMapGeometry() {
	g := authenticache.NewMapGeometry(65536)
	fmt.Println(g.Width, g.Height())
	c := g.Coord(65535)
	fmt.Println(c.X, c.Y)
	// Output:
	// 256 256
	// 255 255
}
