package authenticache_test

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	authenticache "repro"
	"repro/internal/errormap"
	"repro/internal/fault"
	"repro/internal/rng"
)

// Chaos tests: mixed enroll/verify/remap traffic driven through the
// public API while the fault package injects network and disk
// failures, asserting the system's core invariants hold under fire:
//
//   - no forged accept: an impostor device is never authenticated,
//     faults or not;
//   - no enrolled client is lost: after the storm, crash-recovery
//     restores every client whose enrollment was reported durable;
//   - every surfaced error is typed: callers always get an *AuthError
//     they can classify, never a bare transport string;
//   - graceful degradation: overload sheds with a retryable verdict
//     instead of deadlocking or collapsing.
//
// All fault schedules derive from chaosSeed, so a failure replays
// exactly; scripts/check.sh runs these under -race.
const chaosSeed = 0xC4A05

// chaosMap builds a deterministic synthetic error map.
func chaosMap(lines, k int, seed uint64, vdds ...int) *errormap.Map {
	g := errormap.NewGeometry(lines)
	m := errormap.NewMap(g)
	r := rng.New(seed)
	for _, v := range vdds {
		m.AddPlane(v, errormap.RandomPlane(g, k, r))
	}
	return m
}

// chaosPolicy retries hard and fast: the storm is the point, so the
// budget is generous while the delays stay test-sized.
func chaosPolicy(seed uint64) authenticache.RetryPolicy {
	return authenticache.RetryPolicy{
		MaxAttempts: 16,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Seed:        seed,
	}
}

// TestChaosMixedTrafficUnderFaults runs four genuine clients and one
// impostor against a durable server whose disk randomly fails fsyncs
// and truncates writes, over a wire that drops ~10% of operations.
// Resilient clients must push ≥99% of transactions through, the
// impostor must never be accepted, every error must be a typed
// *AuthError, and a post-storm crash-recovery must restore every
// client.
func TestChaosMixedTrafficUnderFaults(t *testing.T) {
	const (
		clients   = 4
		opsPerCli = 25
	)
	dir := filepath.Join(t.TempDir(), "wal")
	ffs := fault.NewFS(nil, fault.FSPlan{
		SyncErrProb:    0.05,
		ShortWriteProb: 0.02,
		CrashAtByte:    -1,
		Seed:           chaosSeed,
	})
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 64
	walOpt := authenticache.WALOptions{
		FS:            ffs,
		FlushInterval: 200 * time.Microsecond,
		FlushBatch:    8,
	}

	// Open and enroll on a calm disk; the storm starts once traffic
	// does.
	ffs.SetArmed(false)
	d, err := authenticache.OpenDurableServer(dir, cfg, chaosSeed, walOpt)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[authenticache.ClientID]authenticache.Key, clients)
	responders := make([]*authenticache.Responder, clients)
	for i := 0; i < clients; i++ {
		id := authenticache.ClientID(fmt.Sprintf("chaos-%d", i))
		m := chaosMap(4096, 80, chaosSeed+uint64(i), 680, 700)
		key, err := d.Enroll(ctx, id, m, 700)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = key
		responders[i] = authenticache.NewResponder(id, authenticache.NewSimDevice(m), key)
	}
	ffs.SetArmed(true)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.NewListener(l, fault.ConnPlan{DropProb: 0.1, Seed: chaosSeed})
	ws := authenticache.NewWireServer(d.Server)
	go ws.Serve(ctx, fl)
	defer ws.Close()
	addr := l.Addr().String()

	var (
		okOps, failedOps atomic.Uint64
		untypedErr       atomic.Uint64
		forged           atomic.Uint64
		retries          atomic.Uint64
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := responders[i]
			rc, err := authenticache.DialResilient(ctx, addr, chaosPolicy(chaosSeed+uint64(i)))
			if err != nil {
				t.Errorf("client %d: dial: %v", i, err)
				return
			}
			defer rc.Close()
			for op := 0; op < opsPerCli; op++ {
				var err error
				var accepted bool
				if op%7 == 6 {
					err = rc.Remap(ctx, r)
					accepted = err == nil
				} else {
					accepted, err = rc.Authenticate(ctx, r)
				}
				switch {
				case err != nil:
					failedOps.Add(1)
					var ae *authenticache.AuthError
					if !errors.As(err, &ae) {
						untypedErr.Add(1)
						t.Errorf("client %d op %d: untyped error %T: %v", i, op, err, err)
					}
				case !accepted:
					// A genuine device rejected is an invariant
					// failure just like a forged accept.
					failedOps.Add(1)
					t.Errorf("client %d op %d: genuine device rejected", i, op)
				default:
					okOps.Add(1)
				}
			}
			retries.Add(rc.Stats().Retries)
		}(i)
	}

	// The impostor hammers a genuine identity with wrong silicon (and
	// the stale initial key, since it cannot observe rotations). Every
	// verdict must be a rejection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrong := chaosMap(4096, 80, chaosSeed+999, 680, 700)
		imp := authenticache.NewResponder("chaos-0", authenticache.NewSimDevice(wrong), keys["chaos-0"])
		rc, err := authenticache.DialResilient(ctx, addr, chaosPolicy(chaosSeed+99))
		if err != nil {
			t.Errorf("impostor dial: %v", err)
			return
		}
		defer rc.Close()
		for op := 0; op < opsPerCli; op++ {
			accepted, err := rc.Authenticate(ctx, imp)
			if accepted {
				forged.Add(1)
				t.Errorf("impostor accepted on op %d", op)
			}
			if err != nil {
				var ae *authenticache.AuthError
				if !errors.As(err, &ae) {
					untypedErr.Add(1)
					t.Errorf("impostor op %d: untyped error %T: %v", op, err, err)
				}
			}
		}
	}()
	wg.Wait()

	total := okOps.Load() + failedOps.Load()
	if total != clients*opsPerCli {
		t.Fatalf("accounted %d ops, want %d", total, clients*opsPerCli)
	}
	if ratio := float64(okOps.Load()) / float64(total); ratio < 0.99 {
		t.Errorf("eventual success ratio %.4f < 0.99 (ok=%d failed=%d)",
			ratio, okOps.Load(), failedOps.Load())
	}
	if forged.Load() != 0 {
		t.Errorf("%d forged accepts", forged.Load())
	}
	if untypedErr.Load() != 0 {
		t.Errorf("%d untyped errors surfaced", untypedErr.Load())
	}
	if retries.Load() == 0 {
		t.Error("storm produced zero retries; fault injection did not bite")
	}
	t.Logf("chaos: ok=%d failed=%d retries=%d", okOps.Load(), failedOps.Load(), retries.Load())

	// Calm the disk, checkpoint, and recover into a fresh server: no
	// enrolled client may be lost, and each must still authenticate
	// with whatever key its device holds after the storm's rotations.
	ws.Close()
	ffs.SetArmed(false)
	if err := d.Close(); err != nil {
		t.Fatalf("close after storm: %v", err)
	}
	d2, err := authenticache.OpenDurableServer(dir, cfg, chaosSeed+1, authenticache.WALOptions{
		FlushInterval: 200 * time.Microsecond,
		FlushBatch:    8,
	})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer d2.Close()
	for i, r := range responders {
		id := authenticache.ClientID(fmt.Sprintf("chaos-%d", i))
		if !d2.Enrolled(id) {
			t.Fatalf("client %q lost across recovery", id)
		}
		ch, err := d2.IssueChallenge(ctx, id)
		if err != nil {
			t.Fatalf("post-recovery challenge for %q: %v", id, err)
		}
		resp, err := r.Respond(ch)
		if err != nil {
			t.Fatalf("post-recovery respond for %q: %v", id, err)
		}
		ok, err := d2.Verify(ctx, id, ch.ID, resp)
		if err != nil {
			t.Fatalf("post-recovery verify for %q: %v", id, err)
		}
		if !ok {
			t.Errorf("client %q rejected after recovery", id)
		}
	}
}

// TestChaosOverloadShedsGracefully saturates a server capped at two
// in-flight transactions with eight concurrent clients. Shedding must
// surface as retryable CodeUnavailable verdicts that the resilient
// clients ride out: every transaction eventually succeeds, some were
// shed, and nothing deadlocks.
func TestChaosOverloadShedsGracefully(t *testing.T) {
	const (
		clients   = 8
		opsPerCli = 5
	)
	m := chaosMap(4096, 80, chaosSeed, 680)
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 64
	srv := authenticache.NewServer(cfg, chaosSeed)
	key, err := srv.Enroll(ctx, "overload-dev", m)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := authenticache.NewWireServerConfig(srv, authenticache.WireConfig{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ctx, l)
	defer ws.Close()

	var shed atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := authenticache.NewResponder("overload-dev", authenticache.NewSimDevice(m), key)
			rc, err := authenticache.DialResilient(ctx, l.Addr().String(), chaosPolicy(chaosSeed+uint64(i)))
			if err != nil {
				t.Errorf("client %d: dial: %v", i, err)
				return
			}
			defer rc.Close()
			for op := 0; op < opsPerCli; op++ {
				ok, err := rc.Authenticate(ctx, r)
				if err != nil {
					t.Errorf("client %d op %d: %v", i, op, err)
					continue
				}
				if !ok {
					t.Errorf("client %d op %d: genuine device rejected", i, op)
				}
			}
			shed.Add(rc.Stats().Unavailable)
		}(i)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Error("no transaction was ever shed; overload cap did not engage")
	}
	t.Logf("overload: %d shed responses ridden out", shed.Load())
}

// TestChaosWALCrashSweepRecoversEveryClient power-fails the journal at
// a sweep of byte offsets across an enrollment workload. For every cut
// point, each enrollment the server reported as durable must survive
// recovery with its exact key and still authenticate; clients whose
// enrollment failed at the crash may be absent but must never be
// half-present with a different key.
func TestChaosWALCrashSweepRecoversEveryClient(t *testing.T) {
	const (
		fleet = 12
		cuts  = 40
	)
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 64
	walOpt := func(fs *fault.FS) authenticache.WALOptions {
		return authenticache.WALOptions{
			FS:            fs,
			FlushInterval: 200 * time.Microsecond,
			FlushBatch:    8,
		}
	}
	maps := make([]*errormap.Map, fleet)
	for i := range maps {
		maps[i] = chaosMap(1024, 30, chaosSeed+uint64(i), 680)
	}
	enrollFleet := func(srv *authenticache.DurableServer) map[authenticache.ClientID]authenticache.Key {
		durable := make(map[authenticache.ClientID]authenticache.Key)
		for i := 0; i < fleet; i++ {
			id := authenticache.ClientID(fmt.Sprintf("sweep-%d", i))
			key, err := srv.Enroll(ctx, id, maps[i])
			if err == nil {
				durable[id] = key
			}
		}
		return durable
	}

	// Clean run on a counting (but fault-free) filesystem to measure
	// the workload's total journal footprint.
	clean := fault.NewFS(nil, fault.FSPlan{CrashAtByte: -1, Seed: chaosSeed})
	d, err := authenticache.OpenDurableServer(filepath.Join(t.TempDir(), "clean"), cfg, chaosSeed, walOpt(clean))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(enrollFleet(d)); got != fleet {
		t.Fatalf("clean run enrolled %d/%d", got, fleet)
	}
	totalBytes := clean.Written()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if totalBytes == 0 {
		t.Fatal("clean run wrote no journal bytes")
	}

	for cut := 0; cut < cuts; cut++ {
		crashAt := totalBytes * int64(cut) / int64(cuts)
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		ffs := fault.NewFS(nil, fault.FSPlan{CrashAtByte: crashAt, Seed: chaosSeed})
		var durable map[authenticache.ClientID]authenticache.Key
		d, err := authenticache.OpenDurableServer(dir, cfg, chaosSeed, walOpt(ffs))
		if err == nil {
			durable = enrollFleet(d)
			// No Close: the device is dead. Recovery reads the bytes
			// that made it to the (real) disk below the fault layer.
		}

		rec, err := authenticache.OpenDurableServer(dir, cfg, chaosSeed+1, authenticache.WALOptions{
			FlushInterval: 200 * time.Microsecond,
			FlushBatch:    8,
		})
		if err != nil {
			t.Fatalf("cut %d (byte %d): recovery open: %v", cut, crashAt, err)
		}
		for id, key := range durable {
			if !rec.Enrolled(id) {
				t.Fatalf("cut %d (byte %d): durable client %q lost", cut, crashAt, id)
			}
			got, err := rec.CurrentKey(id)
			if err != nil {
				t.Fatalf("cut %d: current key for %q: %v", cut, id, err)
			}
			if got != key {
				t.Fatalf("cut %d (byte %d): client %q recovered with wrong key", cut, crashAt, id)
			}
		}
		// One recovered client must still complete a round trip.
		for id := range durable {
			var idx int
			fmt.Sscanf(string(id), "sweep-%d", &idx)
			r := authenticache.NewResponder(id, authenticache.NewSimDevice(maps[idx]), durable[id])
			ch, err := rec.IssueChallenge(ctx, id)
			if err != nil {
				t.Fatalf("cut %d: challenge for %q: %v", cut, id, err)
			}
			resp, err := r.Respond(ch)
			if err != nil {
				t.Fatalf("cut %d: respond for %q: %v", cut, id, err)
			}
			if ok, err := rec.Verify(ctx, id, ch.ID, resp); err != nil || !ok {
				t.Fatalf("cut %d: recovered client %q failed auth: ok=%v err=%v", cut, id, ok, err)
			}
			break
		}
		rec.Close()
	}
}
