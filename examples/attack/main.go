// Attack: stage the paper's Section 6.7 model-building attack against
// a live device and show the mitigation — adaptive error remapping —
// resetting the attacker mid-campaign.
//
// An eavesdropper records every challenge-response transaction and
// trains a win-rate model of the logical error map. Once its
// prediction rate climbs, the server rotates the remap key (Section
// 4.5): all the attacker's knowledge is expressed in stale logical
// coordinates and its accuracy collapses back to the floor.
//
//	go run ./examples/attack
package main

import (
	"context"
	"fmt"
	"log"

	authenticache "repro"
	"repro/internal/attack"
	"repro/internal/errormap"
	"repro/internal/rng"
)

func main() {
	ctx := context.Background()
	const (
		lines    = 16384
		errs     = 100
		authVdd  = 680
		remapVdd = 700
		crpBits  = 64
		phase1   = 1200 // transactions before the key rotation
		phase2   = 600  // transactions after
		window   = 200
	)

	g := errormap.NewGeometry(lines)
	r := rng.New(31337)
	plane := errormap.RandomPlane(g, errs, r)
	reserved := errormap.RandomPlane(g, errs, r)
	emap := errormap.NewMap(g)
	emap.AddPlane(authVdd, plane)
	emap.AddPlane(remapVdd, reserved)

	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = crpBits
	srv := authenticache.NewServer(cfg, 5)
	key, err := srv.Enroll(ctx, "victim", emap, remapVdd)
	if err != nil {
		log.Fatal(err)
	}
	device := authenticache.NewResponder("victim", authenticache.NewSimDevice(emap), key)

	eavesdropper := attack.NewModel(g)
	fmt.Println("phase 1: eavesdropper intercepts genuine transactions")
	runPhase(ctx, srv, device, eavesdropper, phase1, window)

	fmt.Println("\n-- server rotates the logical map key (Section 4.5) --")
	req, err := srv.BeginRemap(ctx, "victim")
	if err != nil {
		log.Fatal(err)
	}
	if err := device.HandleRemap(req); err != nil {
		log.Fatal(err)
	}
	if err := srv.CompleteRemap(ctx, "victim", true); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Println("phase 2: the trained model faces the remapped coordinate space")
	runPhase(ctx, srv, device, eavesdropper, phase2, window)
}

// runPhase runs genuine authentications while the attacker predicts
// each challenge before observing its true response (prequential
// evaluation), printing windowed accuracy.
func runPhase(ctx context.Context, srv *authenticache.Server, device *authenticache.Responder, model *attack.Model, n, window int) {
	correct, bits := 0, 0
	for i := 1; i <= n; i++ {
		ch, err := srv.IssueChallenge(ctx, "victim")
		if err != nil {
			log.Fatal(err)
		}
		resp, err := device.Respond(ch)
		if err != nil {
			log.Fatal(err)
		}
		if ok, err := srv.Verify(ctx, "victim", ch.ID, resp); err != nil || !ok {
			log.Fatalf("genuine device rejected (ok=%v err=%v)", ok, err)
		}
		// The eavesdropper sees the wire traffic: predict, then train.
		for b, pb := range ch.Bits {
			if model.PredictBit(pb) == resp.Bit(b) {
				correct++
			}
			bits++
			model.ObserveBit(pb, resp.Bit(b))
		}
		if i%window == 0 {
			fmt.Printf("  after %5d intercepted CRPs: prediction rate %.1f%%\n",
				model.Observed()/64, 100*float64(correct)/float64(bits))
			correct, bits = 0, 0
		}
	}
}
