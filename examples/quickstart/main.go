// Quickstart: manufacture one simulated chip, enroll it, and run a few
// authentication transactions through the full firmware stack — the
// smallest end-to-end Authenticache flow.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	authenticache "repro"
)

func main() {
	ctx := context.Background()
	// 1. "Manufacture" a chip. The seed is its physical identity:
	// process variation places this chip's weak cache cells.
	chip, err := authenticache.NewChip(authenticache.ChipConfig{
		Seed:       42,
		CacheBytes: 1 << 20, // 1 MB LLC keeps the demo fast
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip manufactured: %d-line cache, voltage floor %d mV\n",
		chip.Geometry().Lines(), chip.FloorMV())

	// 2. Factory enrollment: characterise the low-voltage error map at
	// two challenge voltage levels and hand it to the server.
	levels := chip.AuthVoltagesMV(2, 10)
	emap, err := chip.Enroll(levels)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range emap.Voltages() {
		fmt.Printf("enrolled error plane at %d mV: %d failing lines\n",
			v, emap.Plane(v).ErrorCount())
	}

	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 128
	srv := authenticache.NewServer(cfg, 7)
	key, err := srv.Enroll(ctx, "demo-chip", emap)
	if err != nil {
		log.Fatal(err)
	}
	device := authenticache.NewResponder("demo-chip", chip.Device(), key)

	// 3. Field authentication: server issues a challenge over the keyed
	// logical map; the chip answers by self-testing cache lines at low
	// voltage inside its (simulated) SMM firmware.
	for i := 1; i <= 3; i++ {
		ch, err := srv.IssueChallenge(ctx, "demo-chip")
		if err != nil {
			log.Fatal(err)
		}
		resp, err := device.Respond(ch)
		if err != nil {
			log.Fatal(err)
		}
		ok, err := srv.Verify(ctx, "demo-chip", ch.ID, resp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("authentication %d: accepted=%v (%d-bit CRP, %v firmware time, %d line self-tests)\n",
			i, ok, ch.Len(), chip.Firmware().Elapsed().Round(1e6), chip.Firmware().ProbesLastRun())
	}

	// 4. A different chip with the same key is NOT this device.
	clone, err := authenticache.NewChip(authenticache.ChipConfig{Seed: 43, CacheBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fake := authenticache.NewResponder("demo-chip", clone.Device(), key)
	ch, err := srv.IssueChallenge(ctx, "demo-chip")
	if err != nil {
		log.Fatal(err)
	}
	if resp, err := fake.Respond(ch); err != nil {
		fmt.Printf("impostor chip: aborted before answering (%v)\n", err)
	} else {
		ok, _ := srv.Verify(ctx, "demo-chip", ch.ID, resp)
		fmt.Printf("impostor chip with stolen key: accepted=%v\n", ok)
	}
}
