// Keyvault: use the cache-ECC PUF as a memoryless key vault — the
// cryptographic key generation application of the paper's Section 7.3,
// through the keygen library.
//
// No key material is stored on the device. Provisioning binds a fresh
// secret to the PUF response with public code-offset helper data; at
// runtime the device re-measures its (noisy!) response and
// reconstructs the exact same 256-bit key. A cloned device running the
// identical procedure with the same public bundle gets nothing. Both
// extractors are demonstrated: the 5x repetition code and
// BCH(255,131,18).
//
//	go run ./examples/keyvault
package main

import (
	"fmt"
	"log"

	"repro/internal/auth"
	"repro/internal/errormap"
	"repro/internal/keygen"
	"repro/internal/noise"
	"repro/internal/rng"
)

const vdd = 680

func main() {
	g := errormap.NewGeometry(16384)
	r := rng.New(4242)

	devicePlane := errormap.RandomPlane(g, 100, r)
	device := deviceFor(devicePlane)

	for _, params := range []keygen.Params{
		keygen.DefaultParams(vdd),
		keygen.BCHParams(vdd),
	} {
		fmt.Printf("--- scheme: %s ---\n", params.Scheme)
		bundle, key, err := keygen.Provision(device, params, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("provisioned a 256-bit key from %d response bits; device stores ZERO secret bytes\n",
			bundle.Challenge.Len())

		// Runtime reconstruction under increasing field noise.
		for _, pct := range []float64{0, 3, 6} {
			fieldPlane := devicePlane
			if pct > 0 {
				fieldPlane = noise.Apply(devicePlane,
					noise.Profile{InjectFrac: pct / 100, RemoveFrac: pct / 200}, r)
			}
			got, err := keygen.Recover(deviceFor(fieldPlane), bundle)
			status := "key match: true"
			if err != nil {
				status = fmt.Sprintf("recovery failed (%v)", err)
			} else if got != key {
				status = "key match: FALSE"
			}
			fmt.Printf("  re-measurement at %2.0f%% noise -> %s\n", pct, status)
		}

		// A cloned device fails.
		clone := deviceFor(errormap.RandomPlane(g, 100, r))
		got, err := keygen.Recover(clone, bundle)
		switch {
		case err != nil:
			fmt.Printf("  cloned silicon -> recovery rejected (%v)\n", err)
		case got != key:
			fmt.Println("  cloned silicon -> wrong key (useless to the attacker)")
		default:
			log.Fatal("clone reconstructed the key — the PUF failed")
		}
	}
}

func deviceFor(p *errormap.Plane) *auth.SimDevice {
	m := errormap.NewMap(p.Geometry())
	m.AddPlane(vdd, p)
	return auth.NewSimDevice(m)
}
