// Loadtest: hammer the TCP authentication server with a concurrent
// fleet and report sustained throughput and latency percentiles — the
// capacity-planning question behind Table 1's "thousands of daily
// authentications per device".
//
// Every worker owns a distinct enrolled device and loops full
// authentication transactions (challenge → PUF evaluation → verify →
// session key) over its own TCP connection. With -proto v2 the worker
// speaks the multiplexed binary framing and -depth lanes pipeline
// concurrent transactions over that one connection.
//
// With -nodes N the single server becomes an in-process replicated
// cluster: N nodes (node 0 primary), each with its own WAL and wire
// listener, fronted by a consistent-hash router that every worker
// dials — the same topology `authd -role primary/follower/router`
// builds across processes.
//
//	go run ./examples/loadtest                  # v1 lock-step JSON
//	go run ./examples/loadtest -proto v2 -depth 8
//	go run ./examples/loadtest -nodes 3 -proto v2 -depth 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	authenticache "repro"
	"repro/internal/errormap"
	"repro/internal/rng"
)

const (
	workers      = 8
	perWorker    = 40
	lines        = 16384
	errsPerPlane = 100
	vddMV        = 680
)

func main() {
	protoName := flag.String("proto", "v1", "wire framing: v1 (lock-step JSON) or v2 (multiplexed binary)")
	depth := flag.Int("depth", 1, "pipeline depth per connection (v2 only: lanes sharing one connection)")
	nodeCount := flag.Int("nodes", 1, "cluster size: 1 serves directly, N>1 replicates behind a consistent-hash router")
	hedgeDelay := flag.Duration("hedge-delay", 0, "router hedge delay before trying the ring successor (clustered only; 0 = library default, negative disables)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures that open a peer's breaker (clustered only; 0 = library default, negative disables)")
	maxStaleness := flag.Int64("max-staleness", 0, "follower lag bound for serving reads (clustered only; 0 = library default, negative disables)")
	flag.Parse()
	proto, err := authenticache.ParseProto(*protoName)
	if err != nil {
		log.Fatal(err)
	}
	if *depth < 1 {
		log.Fatal("loadtest: -depth must be >= 1")
	}
	if *depth > 1 && proto != authenticache.ProtoV2 {
		log.Fatal("loadtest: -depth > 1 needs -proto v2 (v1 is lock-step)")
	}
	if *nodeCount < 1 {
		log.Fatal("loadtest: -nodes must be >= 1")
	}

	ctx := context.Background()
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 128

	var srv *authenticache.Server
	var ingress string
	var topology string
	if *nodeCount > 1 {
		cluster, err := startCluster(ctx, *nodeCount, cfg, proto, resilience{
			hedgeDelay:       *hedgeDelay,
			breakerThreshold: *breakerThreshold,
			maxStaleness:     *maxStaleness,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.close()
		srv = cluster.primary.Server()
		ingress = cluster.routerAddr
		topology = fmt.Sprintf("%d-node cluster + router", *nodeCount)
	} else {
		srv = authenticache.NewServer(cfg, 1)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ws := authenticache.NewWireServer(srv)
		go ws.Serve(ctx, l)
		defer ws.Close()
		ingress = l.Addr().String()
		topology = "single node"
	}

	// Enroll one device per worker.
	type client struct {
		responder *authenticache.Responder
	}
	clients := make([]client, workers)
	r := rng.New(2)
	for i := range clients {
		g := errormap.NewGeometry(lines)
		m := errormap.NewMap(g)
		m.AddPlane(vddMV, errormap.RandomPlane(g, errsPerPlane, r))
		id := authenticache.ClientID(fmt.Sprintf("load-%02d", i))
		key, err := srv.Enroll(ctx, id, m)
		if err != nil {
			log.Fatal(err)
		}
		clients[i] = client{responder: authenticache.NewResponder(id, authenticache.NewSimDevice(m), key)}
	}

	fmt.Printf("%s on %s; proto=%s depth=%d; %d workers x %d transactions\n",
		topology, ingress, *protoName, *depth, workers, perWorker)

	var rejected, failed atomic.Int64
	latencies := make([][]time.Duration, workers)
	var latMu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := authenticache.DialProto(ctx, ingress, proto)
			if err != nil {
				failed.Add(int64(perWorker))
				return
			}
			defer wc.Close()
			// Split the worker's budget across -depth pipelined lanes,
			// all sharing the one connection.
			var lanes sync.WaitGroup
			for lane := 0; lane < *depth; lane++ {
				n := perWorker / *depth
				if lane < perWorker%*depth {
					n++
				}
				lanes.Add(1)
				go func(n int) {
					defer lanes.Done()
					for i := 0; i < n; i++ {
						t0 := time.Now()
						ok, err := wc.Authenticate(ctx, clients[w].responder)
						if err != nil {
							failed.Add(1)
							continue
						}
						if !ok {
							rejected.Add(1)
						}
						latMu.Lock()
						latencies[w] = append(latencies[w], time.Since(t0))
						latMu.Unlock()
					}
				}(n)
			}
			lanes.Wait()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := len(all)
	if total == 0 {
		log.Fatal("no transactions completed")
	}
	fmt.Printf("completed %d transactions in %v (%.0f auth/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("latency p50=%v p90=%v p99=%v max=%v\n",
		all[total/2].Round(time.Microsecond),
		all[total*9/10].Round(time.Microsecond),
		all[total*99/100].Round(time.Microsecond),
		all[total-1].Round(time.Microsecond))
	fmt.Printf("rejected=%d transport_failures=%d\n", rejected.Load(), failed.Load())
	if rejected.Load() > 0 || failed.Load() > 0 {
		log.Fatal("genuine transactions were rejected under load")
	}
}

// loadCluster is the in-process analogue of the authd cluster
// quickstart: N replicated nodes, each serving its wire listener,
// plus a router ingress forwarding every transaction to its client's
// consistent-hash owner.
type loadCluster struct {
	primary    *authenticache.ClusterNode
	nodes      []*authenticache.ClusterNode
	router     *authenticache.Router
	routerAddr string
	dir        string
	servers    []*authenticache.WireServer
}

// resilience carries the router/cluster control-plane knobs from the
// command line (zero = library default, negative = disabled), the
// same trio authd exposes.
type resilience struct {
	hedgeDelay       time.Duration
	breakerThreshold int
	maxStaleness     int64
}

func startCluster(ctx context.Context, n int, cfg authenticache.ServerConfig, proto authenticache.Proto, resil resilience) (*loadCluster, error) {
	dir, err := os.MkdirTemp("", "loadtest-cluster")
	if err != nil {
		return nil, err
	}
	c := &loadCluster{dir: dir}

	replLns := make([]net.Listener, n)
	replAddrs := make([]string, n)
	clientLns := make([]net.Listener, n)
	clientAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		if replLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return nil, err
		}
		replAddrs[i] = replLns[i].Addr().String()
		if clientLns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return nil, err
		}
		clientAddrs[i] = clientLns[i].Addr().String()
	}
	for i := 0; i < n; i++ {
		node, err := authenticache.OpenClusterNode(authenticache.ClusterConfig{
			NodeIndex:    i,
			Peers:        replAddrs,
			ClientPeers:  clientAddrs,
			Dir:          filepath.Join(dir, fmt.Sprintf("node-%d", i)),
			Auth:         cfg,
			Seed:         uint64(1 + i),
			ReplicaAcks:  1,
			ReplListener: replLns[i],
			MaxStaleness: resil.maxStaleness,
		})
		if err != nil {
			c.close()
			return nil, err
		}
		if err := node.Start(ctx); err != nil {
			c.close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		ws, err := node.NewWireServer(authenticache.WireConfig{Proto: proto})
		if err != nil {
			c.close()
			return nil, err
		}
		go ws.Serve(ctx, clientLns[i])
		c.servers = append(c.servers, ws)
	}
	c.primary = c.nodes[0]
	for c.primary.Status().Followers < 1 {
		time.Sleep(10 * time.Millisecond)
	}

	c.router = authenticache.NewRouter(authenticache.RouterConfig{
		ClientPeers:      clientAddrs,
		Self:             -1,
		HedgeDelay:       resil.hedgeDelay,
		BreakerThreshold: resil.breakerThreshold,
		MaxStaleness:     resil.maxStaleness,
	})
	c.router.Start(ctx)
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.close()
		return nil, err
	}
	rs, err := authenticache.NewWireServerBackend(c.router, authenticache.WireConfig{Proto: proto})
	if err != nil {
		c.close()
		return nil, err
	}
	go rs.Serve(ctx, rl)
	c.servers = append(c.servers, rs)
	c.routerAddr = rl.Addr().String()
	return c, nil
}

func (c *loadCluster) close() {
	for _, ws := range c.servers {
		ws.Close()
	}
	if c.router != nil {
		c.router.Close()
	}
	for _, n := range c.nodes {
		n.Close()
	}
	os.RemoveAll(c.dir)
}
