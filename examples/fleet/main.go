// Fleet: enroll a population of devices and measure the PUF quality
// metrics the paper evaluates — uniqueness, reliability, and the
// false-accept/false-reject behaviour of the fleet under field noise
// (temperature excursions, new and masked errors).
//
// This is the workload the paper's introduction motivates: a server
// authenticating many mobile devices, each identified only by its
// cache's low-voltage error fingerprint.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	authenticache "repro"
	"repro/internal/errormap"
	"repro/internal/fault"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/stats"
)

const (
	fleetSize = 40
	lines     = 16384 // 1 MB of 64 B lines
	errCount  = 100
	crpBits   = 256
	authVdd   = 680
	rounds    = 5
)

func main() {
	ctx := context.Background()
	// Manufacture the fleet as map-backed devices (the error maps are
	// the silicon identity; examples/quickstart shows the full firmware
	// path for a single chip).
	g := errormap.NewGeometry(lines)
	r := rng.New(2026)
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = crpBits
	srv := authenticache.NewServer(cfg, 99)

	type fleetDev struct {
		id        authenticache.ClientID
		enrolled  *errormap.Plane
		responder *authenticache.Responder
	}
	devices := make([]*fleetDev, fleetSize)
	for i := range devices {
		plane := errormap.RandomPlane(g, errCount, r)
		emap := errormap.NewMap(g)
		emap.AddPlane(authVdd, plane)

		// Field conditions differ from enrollment: ~10% new errors and
		// ~5% masked ones (the paper's "normal operation" noise).
		fieldPlane := noise.Apply(plane, noise.Profile{InjectFrac: 0.10, RemoveFrac: 0.05}, r)
		fieldMap := errormap.NewMap(g)
		fieldMap.AddPlane(authVdd, fieldPlane)

		id := authenticache.ClientID(fmt.Sprintf("fleet-%03d", i))
		key, err := srv.Enroll(ctx, id, emap)
		if err != nil {
			log.Fatal(err)
		}
		devices[i] = &fleetDev{
			id:        id,
			enrolled:  plane,
			responder: authenticache.NewResponder(id, authenticache.NewSimDevice(fieldMap), key),
		}
	}
	fmt.Printf("fleet enrolled: %d devices, %d-line caches, %d errors each\n", fleetSize, lines, errCount)

	// Genuine traffic: every device authenticates `rounds` times.
	genuineOK, genuineTotal := 0, 0
	for round := 0; round < rounds; round++ {
		for _, d := range devices {
			ch, err := srv.IssueChallenge(ctx, d.id)
			if err != nil {
				log.Fatal(err)
			}
			resp, err := d.responder.Respond(ch)
			if err != nil {
				log.Fatal(err)
			}
			ok, err := srv.Verify(ctx, d.id, ch.ID, resp)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				genuineOK++
			}
			genuineTotal++
		}
	}
	fmt.Printf("genuine transactions: %d/%d accepted (false-reject rate %.2f%%)\n",
		genuineOK, genuineTotal, 100*float64(genuineTotal-genuineOK)/float64(genuineTotal))

	// Impostor traffic: every device answers a neighbour's challenge.
	impostorAccepted, impostorTotal := 0, 0
	for i, d := range devices {
		victim := devices[(i+1)%len(devices)]
		ch, err := srv.IssueChallenge(ctx, victim.id)
		if err != nil {
			log.Fatal(err)
		}
		// The impostor holds the victim's key (worst case) but answers
		// with its own silicon.
		imp := authenticache.NewResponder(victim.id, authenticache.NewSimDevice(fieldMapOf(g, d.enrolled)), victim.responder.Key())
		resp, err := imp.Respond(ch)
		if err != nil {
			log.Fatal(err)
		}
		ok, err := srv.Verify(ctx, victim.id, ch.ID, resp)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			impostorAccepted++
		}
		impostorTotal++
	}
	fmt.Printf("impostor transactions: %d/%d accepted (false-accept rate %.2f%%)\n",
		impostorAccepted, impostorTotal, 100*float64(impostorAccepted)/float64(impostorTotal))

	// Fleet-level PUF metrics: uniqueness across devices on a shared
	// challenge, computed on raw (physical-map) responses.
	shared := sharedChallenge(g, r)
	responses := make([][]byte, fleetSize)
	for i, dev := range devices {
		responses[i] = rawResponse(dev.enrolled, shared)
	}
	fmt.Printf("uniqueness (mean inter-chip HD): %.1f%% (ideal 50%%)\n",
		stats.UniquenessPercent(responses, crpBits))

	// Reliability: re-measure device 0 under noise several times.
	ref := rawResponse(devices[0].enrolled, shared)
	var noisy [][]byte
	for k := 0; k < 8; k++ {
		p := noise.Apply(devices[0].enrolled, noise.InjectLevel(10), r)
		noisy = append(noisy, rawResponse(p, shared))
	}
	fmt.Printf("reliability at 10%% noise: %.1f%% (ideal 100%%)\n",
		stats.ReliabilityPercent(ref, noisy, crpBits))

	// Hostile-wire traffic: the same fleet authenticating over TCP
	// through a fault injector that drops ~15% of I/O operations.
	// Resilient clients redial and retry with backoff; every
	// transaction still lands.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	chaosL := fault.NewListener(l, fault.ConnPlan{DropProb: 0.15, Seed: 2026})
	ws := authenticache.NewWireServer(srv)
	go ws.Serve(ctx, chaosL)
	defer ws.Close()

	wireOK, wireTotal := 0, 0
	var retries, reconnects uint64
	policy := authenticache.RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	for _, d := range devices[:8] {
		rc, err := authenticache.DialResilient(ctx, l.Addr().String(), policy)
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			ok, err := rc.Authenticate(ctx, d.responder)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				wireOK++
			}
			wireTotal++
		}
		st := rc.Stats()
		retries += st.Retries
		reconnects += st.Reconnects
		rc.Close()
	}
	fmt.Printf("chaos wire (15%% drop rate): %d/%d accepted, %d retries, %d reconnects\n",
		wireOK, wireTotal, retries, reconnects)
}

func fieldMapOf(g errormap.Geometry, p *errormap.Plane) *errormap.Map {
	m := errormap.NewMap(g)
	m.AddPlane(authVdd, p.Clone())
	return m
}

type pair struct{ a, b int }

func sharedChallenge(g errormap.Geometry, r *rng.Rand) []pair {
	out := make([]pair, crpBits)
	for i := range out {
		a, b := r.Intn(g.Lines), r.Intn(g.Lines)
		for b == a {
			b = r.Intn(g.Lines)
		}
		out[i] = pair{a, b}
	}
	return out
}

func rawResponse(p *errormap.Plane, ch []pair) []byte {
	df := p.DistanceTransform()
	out := make([]byte, (len(ch)+7)/8)
	for i, pr := range ch {
		if df.DistLine(pr.a) > df.DistLine(pr.b) {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}
