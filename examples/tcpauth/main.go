// TCPAuth: run the authentication server and a client in one process,
// talking over a real localhost TCP socket with the newline-delimited
// JSON wire protocol — the deployment shape of cmd/authd + cmd/authcli
// condensed into a self-contained demo.
//
//	go run ./examples/tcpauth
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	authenticache "repro"
)

func main() {
	ctx := context.Background()
	// Factory side: manufacture and enroll one chip.
	chip, err := authenticache.NewChip(authenticache.ChipConfig{Seed: 7, CacheBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	levels := chip.AuthVoltagesMV(3, 10)
	emap, err := chip.Enroll(levels)
	if err != nil {
		log.Fatal(err)
	}
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 128
	srv := authenticache.NewServer(cfg, 11)
	reserved := levels[len(levels)-1]
	key, err := srv.Enroll(ctx, "tcp-demo", emap, reserved)
	if err != nil {
		log.Fatal(err)
	}

	// Server side: listen on a random localhost port.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ws := authenticache.NewWireServer(srv)
	go ws.Serve(ctx, l)
	defer ws.Close()
	fmt.Printf("server listening on %s\n", l.Addr())

	// Client side: dial, rotate the key once, authenticate three times.
	device := authenticache.NewResponder("tcp-demo", chip.Device(), key)
	wc, err := authenticache.Dial(ctx, l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer wc.Close()

	if err := wc.Remap(ctx, device); err != nil {
		log.Fatal(err)
	}
	fmt.Println("key update transaction complete: client and server rotated to a fresh logical map key")

	for i := 1; i <= 3; i++ {
		ok, sessionKey, err := wc.AuthenticateSession(ctx, device)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("authentication %d over TCP: accepted=%v, session key %x... (firmware time %v)\n",
			i, ok, sessionKey[:4], chip.Firmware().Elapsed().Round(1e6))
	}

	st := srv.Stats()
	fmt.Printf("server stats: issued=%d accepted=%d rejected=%d\n", st.Issued, st.Accepted, st.Rejected)
}
