// Factory: run the post-manufacturing enrollment line. A batch of
// chips comes off the (simulated) fab; each is boot-calibrated,
// characterised at several voltage levels, screened against acceptance
// criteria, and — if it passes — provisioned into the authentication
// server. One accepted unit then proves the pipeline by
// authenticating.
//
//	go run ./examples/factory
package main

import (
	"context"
	"fmt"
	"log"

	authenticache "repro"
	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/enroll"
)

func main() {
	ctx := context.Background()
	const batch = 6
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 128
	srv := authenticache.NewServer(cfg, 77)

	var accepted []*enroll.Result
	var chips []*core.Chip
	for unit := 0; unit < batch; unit++ {
		chip, err := core.NewChip(core.ChipConfig{
			Seed:       9000 + uint64(unit),
			CacheBytes: 512 << 10,
		})
		if err != nil {
			log.Fatalf("unit %d failed boot calibration: %v", unit, err)
		}
		crit := enroll.DefaultCriteria(chip.Geometry().Lines())
		// Tighten the stability screen for the demo so marginal units
		// are visible in the output.
		crit.MaxInstabilityPct = 15

		id := auth.ClientID(fmt.Sprintf("unit-%03d", unit))
		res, err := enroll.Characterize(chip, id, crit)
		if err != nil {
			log.Fatalf("unit %d characterisation error: %v", unit, err)
		}
		if res.Accepted() {
			fmt.Printf("%s: ACCEPT  floor=%dmV planes=%v reserved=%v instability=%.1f%%\n",
				id, res.Record.FloorMV, res.Record.AuthVdds, res.Record.ReservedVdds,
				res.Record.InstabilityPct)
			accepted = append(accepted, res)
			chips = append(chips, chip)
		} else {
			fmt.Printf("%s: REJECT  %v\n", id, res.Rejections)
		}
	}
	fmt.Printf("yield: %d/%d\n", len(accepted), batch)
	if len(accepted) == 0 {
		log.Fatal("entire batch rejected — check the criteria")
	}

	// Provision every accepted unit and prove the first one works.
	var firstKey authenticache.Key
	for i, res := range accepted {
		key, err := enroll.Provision(ctx, srv, res)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			firstKey = key
		}
	}
	dev := authenticache.NewResponder(accepted[0].Record.ID, chips[0].Device(), firstKey)
	ch, err := srv.IssueChallenge(ctx, accepted[0].Record.ID)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := dev.Respond(ch)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := srv.Verify(ctx, accepted[0].Record.ID, ch.ID, resp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field check for %s: accepted=%v\n", accepted[0].Record.ID, ok)
}
