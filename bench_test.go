// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per experiment; see DESIGN.md's
// per-experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// Each iteration regenerates the full experiment at the default Monte
// Carlo scale; cmd/acsim prints the same rows.
package authenticache_test

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

// benchSeed keeps benchmark workloads deterministic.
const benchSeed = 1

func runExperiment(b *testing.B, fn func() *experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := fn()
		tbl.Fprint(io.Discard)
	}
}

func BenchmarkFig1VoltageSweep(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.Fig1(benchSeed) })
}

func BenchmarkFig2ErrorDistribution(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.Fig2(benchSeed) })
}

func BenchmarkFig3CrossChipOverlap(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.Fig3(benchSeed) })
}

func BenchmarkSec3InterIntraDie(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.Sec3(benchSeed) })
}

func BenchmarkFig9HammingDistributions(b *testing.B) {
	scale := experiments.DefaultScale()
	runExperiment(b, func() *experiments.Table { return experiments.Fig9(benchSeed, scale) })
}

func BenchmarkFig10NoiseTolerance(b *testing.B) {
	scale := experiments.MCScale{Maps: 8, ProfilesPerMap: 6, ChallengesPerMap: 2}
	runExperiment(b, func() *experiments.Table { return experiments.Fig10(benchSeed, scale) })
}

func BenchmarkFig11PersistenceCDF(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.Fig11(benchSeed) })
}

func BenchmarkFig12AliasingUniformity(b *testing.B) {
	scale := experiments.DefaultScale()
	runExperiment(b, func() *experiments.Table { return experiments.Fig12(benchSeed, scale) })
}

func BenchmarkFig13Runtime(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.Fig13(benchSeed) })
}

func BenchmarkFig14RuntimeVsErrors(b *testing.B) {
	scale := experiments.DefaultScale()
	runExperiment(b, func() *experiments.Table { return experiments.Fig14(benchSeed, scale) })
}

func BenchmarkFig15AvgDistance(b *testing.B) {
	scale := experiments.DefaultScale()
	runExperiment(b, func() *experiments.Table { return experiments.Fig15(benchSeed, scale) })
}

func BenchmarkFig16ModelAttack(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.Fig16(benchSeed, 100000, 12500) })
}

func BenchmarkTable1Lifetime(b *testing.B) {
	runExperiment(b, experiments.Table1)
}

func BenchmarkExtTemperature(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.ExtTemperature(benchSeed) })
}

func BenchmarkExtAging(b *testing.B) {
	runExperiment(b, func() *experiments.Table { return experiments.ExtAging(benchSeed) })
}
