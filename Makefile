.PHONY: check test bench bench-wire bench-cluster build lint

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

lint:
	go run ./cmd/authlint ./...

bench:
	go test -bench . -benchtime 2s -run '^$$' ./...

# Fixed-iteration wire throughput run; regenerates BENCH_wire.json.
bench-wire:
	sh scripts/bench_wire.sh

# Fixed-iteration replicated-cluster run; regenerates BENCH_cluster.json.
bench-cluster:
	sh scripts/bench_cluster.sh
