.PHONY: check test bench build lint

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

lint:
	go run ./cmd/authlint ./...

bench:
	go test -bench . -benchtime 2s -run '^$$' ./...
