.PHONY: check test bench build

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

bench:
	go test -bench . -benchtime 2s -run '^$$' ./...
