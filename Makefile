.PHONY: check test bench bench-wire build lint

check:
	sh scripts/check.sh

test:
	go test ./...

build:
	go build ./...

lint:
	go run ./cmd/authlint ./...

bench:
	go test -bench . -benchtime 2s -run '^$$' ./...

# Fixed-iteration wire throughput run; regenerates BENCH_wire.json.
bench-wire:
	sh scripts/bench_wire.sh
