// Ablation benchmarks for the design choices DESIGN.md calls out:
// search strategy, CRP size, enrollment effort, keyed remapping,
// side-channel decoys, and attacker models.
//
//	go test -bench=Ablation -benchmem
package authenticache_test

import (
	"fmt"
	"testing"

	"repro/internal/attack"
	"repro/internal/auth"
	"repro/internal/cache"
	"repro/internal/crp"
	"repro/internal/ecc"
	"repro/internal/errormap"
	"repro/internal/firmware"
	"repro/internal/mapkey"
	"repro/internal/rng"
	"repro/internal/sram"
	"repro/internal/variation"
	"repro/internal/voltage"
)

// Nearest-error search: the client's expanding ring walk versus the
// server's one-shot BFS distance transform. The crossover justifies
// the asymmetric design — the server amortises one O(n) transform over
// hundreds of queries, while the client answers a handful of
// coordinates with O(probes) self-tests.
func BenchmarkAblationSearchStrategy(b *testing.B) {
	g := errormap.NewGeometry(65536)
	plane := errormap.RandomPlane(g, 100, rng.New(1))
	gen := rng.New(2)

	b.Run("ring-per-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := g.Coord(gen.Intn(g.Lines))
			_, _, _ = plane.RingSearch(c)
		}
	})
	b.Run("transform-then-query", func(b *testing.B) {
		df := plane.DistanceTransform()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = df.DistLine(gen.Intn(g.Lines))
		}
	})
	b.Run("transform-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = plane.DistanceTransform()
		}
	})
}

// CRP size: server-side evaluation cost per challenge length (noise
// robustness grows with size — Figure 10 — at linear evaluation cost).
func BenchmarkAblationCRPSize(b *testing.B) {
	g := errormap.NewGeometry(65536)
	plane := errormap.RandomPlane(g, 100, rng.New(3))
	m := errormap.NewMap(g)
	m.AddPlane(680, plane)
	oracles := crp.NewPlaneOracles(m)
	for _, bits := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("bits-%d", bits), func(b *testing.B) {
			gen := rng.New(4)
			for i := 0; i < b.N; i++ {
				ch := crp.Generate(g, bits, 680, gen)
				if _, err := crp.Evaluate(ch, oracles); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Enrollment effort: error-plane construction at 1, 4, and 8 sweeps.
// More sweeps capture more flaky lines (Figure 11) at linear cost.
func BenchmarkAblationEnrollSweeps(b *testing.B) {
	model := variation.NewModel(5, variation.DefaultParams())
	geo := cache.GeometryForSize(1 << 20)
	arr := sram.New(model, geo.Lines(), 6)
	h := cache.NewErrorHandler(arr, geo)
	arr.SetVoltage(variation.DefaultParams().DefectBandHi - 0.065)
	for _, sweeps := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sweeps-%d", sweeps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = h.BuildPlane(sweeps)
			}
		})
	}
}

// Keyed remapping: the cost of hiding the physical layout. Builds the
// logical plane (Feistel permutation of every error) versus using the
// physical plane directly.
func BenchmarkAblationKeyedRemap(b *testing.B) {
	g := errormap.NewGeometry(65536)
	plane := errormap.RandomPlane(g, 100, rng.New(7))
	key := mapkey.KeyFromBytes([]byte("bench"), "ablation")
	b.Run("physical-plane", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = plane.DistanceTransform()
		}
	})
	b.Run("logical-plane", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = auth.LogicalPlane(plane, key, 680).DistanceTransform()
		}
	})
}

// Side-channel decoys: firmware authentication cost at decoy ratios
// 0, 1, and 3 (Section 7.2 mitigation). The virtual-time column is the
// modelled prototype cost; the wall-clock column is simulator cost.
func BenchmarkAblationDecoys(b *testing.B) {
	geo := cache.GeometryForSize(512 << 10)
	model := variation.NewModel(8, variation.DefaultParams())
	arr := sram.New(model, geo.Lines(), 9)
	h := cache.NewErrorHandler(arr, geo)
	cfg := voltage.DefaultConfig()
	cfg.StepMV = 5
	cfg.VMinSearch = 0.600
	ctrl := voltage.NewController(arr, cfg)
	h.SetEmergencyCallback(ctrl.Emergency)
	floor, err := ctrl.CalibrateFloor(h)
	if err != nil {
		b.Fatal(err)
	}
	client := firmware.NewClient(h, ctrl, 8, firmware.DefaultCostModel())
	gen := rng.New(10)
	for _, ratio := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("decoy-ratio-%d", ratio), func(b *testing.B) {
			client.DecoyRatio = ratio
			for i := 0; i < b.N; i++ {
				ch := crp.Generate(client.Geometry(), 32, floor+10, gen)
				if _, err := client.Authenticate(ch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(client.Elapsed().Milliseconds()), "virtual-ms/auth")
		})
	}
}

// Fuzzy extractors: the repetition code (paper-faithful helper data)
// versus BCH(255,131,18) (production-grade). Reports key bits per 255
// response bits alongside reproduce cost.
func BenchmarkAblationFuzzyExtractors(b *testing.B) {
	r := rng.New(13)
	response := make([]byte, 32) // 256 bits
	for i := range response {
		response[i] = byte(r.Uint64())
	}
	b.Run("repetition-5x", func(b *testing.B) {
		const keyBits = 51 // 255/5
		secret := make([]byte, (keyBits+7)/8)
		for i := range secret {
			secret[i] = byte(r.Uint64())
		}
		helper, err := ecc.GenerateHelper(response, keyBits, secret)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(keyBits), "keybits/255resp")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ecc.Reproduce(response, helper); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bch-255-131-18", func(b *testing.B) {
		code, err := ecc.NewBCH(8, 18)
		if err != nil {
			b.Fatal(err)
		}
		secret := make([]byte, (code.K+7)/8)
		for i := range secret {
			secret[i] = byte(r.Uint64())
		}
		helper, err := ecc.GenerateBCHHelper(code, response, secret)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(code.K), "keybits/255resp")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ecc.ReproduceBCH(helper, response); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Attacker models: training throughput of the win-rate (Borda) model
// versus the paper's dependency-chain model.
func BenchmarkAblationAttackerModels(b *testing.B) {
	g := errormap.NewGeometry(65536)
	plane := errormap.RandomPlane(g, 100, rng.New(11))
	df := plane.DistanceTransform()
	gen := rng.New(12)
	nextCRP := func() (*crp.Challenge, crp.Response) {
		ch := crp.Generate(g, 64, 0, gen)
		resp := crp.NewResponse(len(ch.Bits))
		for i, bit := range ch.Bits {
			v := 0
			if df.DistLine(bit.A) > df.DistLine(bit.B) {
				v = 1
			}
			resp.SetBit(i, v)
		}
		return ch, resp
	}
	b.Run("winrate-train", func(b *testing.B) {
		m := attack.NewModel(g)
		for i := 0; i < b.N; i++ {
			c, r := nextCRP()
			m.Observe(c, r)
		}
	})
	b.Run("dependency-train", func(b *testing.B) {
		m := attack.NewDependencyModel(g)
		for i := 0; i < b.N; i++ {
			c, r := nextCRP()
			m.Observe(c, r)
		}
	})
	b.Run("dependency-predict", func(b *testing.B) {
		m := attack.NewDependencyModel(g)
		for i := 0; i < 2000; i++ {
			c, r := nextCRP()
			m.Observe(c, r)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, _ := nextCRP()
			for _, bit := range c.Bits {
				_ = m.PredictBit(bit)
			}
		}
	})
}
