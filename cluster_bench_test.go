package authenticache_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	authenticache "repro"
	"repro/internal/auth"
	"repro/internal/fault"
)

// BenchmarkClusterAuth measures what replication costs — and what
// follower read-scaling buys back — on the hot issue→verify path for
// ONE hot client. A single client is the worst case for a single
// node: every transaction serialises on that client's record lock. A
// replicated fleet spreads the serial section: followers sample
// challenges and verify responses against their own replicas (their
// own record locks), touching the primary only for the pair burn.
//
//   - single-node: a 1-node cluster (no replication), the baseline;
//   - replicated-3/primary: a 3-node cluster with every transaction
//     on the primary — the pure replication tax (quorum ack per burn);
//   - replicated-3/followers: the same fleet with client traffic on
//     the two followers only — delegated issuance plus local
//     verification against their replicas, the primary reduced to
//     burning pairs.
//
// The rtt=1ms variants put a modelled 1 ms round trip on the
// replication link (fault.DelayConn, same regime as the wire bench).
// That is where read-scaling pays: every burn holds the client's
// record lock across the quorum ack, so a primary serving everything
// serialises sampling and verification behind that wait, while spread
// followers do both against their own replicas during it.
//
// Challenge pairs burn forever, so run with a fixed -benchtime
// iteration count (scripts/bench_cluster.sh regenerates
// BENCH_cluster.json from this).
func BenchmarkClusterAuth(b *testing.B) {
	b.Run("single-node", func(b *testing.B) { benchClusterAuth(b, 1, false, 0) })
	b.Run("replicated-3/primary", func(b *testing.B) { benchClusterAuth(b, 3, false, 0) })
	b.Run("replicated-3/followers", func(b *testing.B) { benchClusterAuth(b, 3, true, 0) })
	const rtt = time.Millisecond
	b.Run("replicated-3/rtt=1ms/primary", func(b *testing.B) { benchClusterAuth(b, 3, false, rtt) })
	b.Run("replicated-3/rtt=1ms/followers", func(b *testing.B) { benchClusterAuth(b, 3, true, rtt) })
}

// BenchmarkClusterPrimaryCost decomposes the primary's per-issuance
// cost, which bounds how far follower issuance scales the fleet:
//
//   - full-issue: everything a single node does per transaction —
//     sample, burn, journal, and verify;
//   - burn-only: what the primary does when a follower issues — just
//     validate + burn + journal (ApproveBurn); sampling and
//     verification moved to the follower's replica.
//
// Fleet issuance capacity is min(primary burn-only rate, N × follower
// rate): the full-issue / burn-only ratio is the headroom follower
// read-scaling buys before the primary saturates. Measured this way
// because a single-core runner cannot exhibit wall-clock parallelism;
// the serial-section shrink is the machine-independent quantity.
func BenchmarkClusterPrimaryCost(b *testing.B) {
	b.Run("full-issue", func(b *testing.B) { benchPrimaryCost(b, false) })
	b.Run("burn-only", func(b *testing.B) { benchPrimaryCost(b, true) })
}

func benchPrimaryCost(b *testing.B, burnOnly bool) {
	acfg := auth.DefaultConfig()
	acfg.ChallengeBits = 128
	acfg.RemapAfterCRPs = 1 << 31
	maxIters := int(authenticache.PossibleCRPs(clusterBenchLines)) / acfg.ChallengeBits / 2
	if b.N > maxIters {
		b.Skipf("b.N=%d would exhaust the CRP registry; use a fixed -benchtime (scripts/bench_cluster.sh)", b.N)
	}

	// Primary and follower replicas built from the same enrollment, no
	// network: this isolates the serial cost, not transport.
	const id = auth.ClientID("bench-hot")
	m := chaosMap(clusterBenchLines, 100, 4242, 680)
	primary := auth.NewServer(acfg, 4242)
	key, err := primary.Enroll(dctx, id, m)
	if err != nil {
		b.Fatal(err)
	}
	follower := auth.NewServer(acfg, 4242)
	var snap bytes.Buffer
	if err := primary.SaveState(&snap); err != nil {
		b.Fatal(err)
	}
	if err := follower.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		b.Fatal(err)
	}
	r := auth.NewResponder(id, auth.NewSimDevice(m), key)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if burnOnly {
			b.StopTimer()
			prop, err := follower.SampleChallenge(dctx, id)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			chID, err := primary.ApproveBurn(dctx, id, prop.Phys, prop.KeySum)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			ch, err := follower.CommitDelegated(dctx, id, chID, prop)
			if err != nil {
				b.Fatal(err)
			}
			resp, err := r.Respond(ch)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := follower.Verify(dctx, id, ch.ID, resp); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		} else {
			ch, err := primary.IssueChallenge(dctx, id)
			if err != nil {
				b.Fatal(err)
			}
			resp, err := r.Respond(ch)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := primary.Verify(dctx, id, ch.ID, resp); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkClusterFailover measures what a dead node costs the read
// path, as a latency distribution rather than a throughput number:
//
//   - healthy: router-forwarded authentication against a 3-node
//     fleet with every node answering — the routing baseline;
//   - owner-stalled: the hot client's owner is black-holed (never
//     answers, never errors) for the whole timed run. The first
//     operations pay one hedge delay each while the failure detector
//     gathers probe evidence; once the breaker opens the owner is
//     skipped outright and operations run at successor speed, with
//     periodic half-open trials re-paying the hedge.
//
// p50 is therefore the steady state after detection and p99 the
// failover transient (hedge windows and half-open trials) — the
// "node kill" tail a deadline-budgeted caller actually observes.
// Fixed -benchtime only, like the other cluster benches.
func BenchmarkClusterFailover(b *testing.B) {
	b.Run("healthy", func(b *testing.B) { benchClusterFailover(b, false) })
	b.Run("owner-stalled", func(b *testing.B) { benchClusterFailover(b, true) })
}

func benchClusterFailover(b *testing.B, stallOwner bool) {
	acfg := authenticache.DefaultServerConfig()
	acfg.ChallengeBits = 128
	acfg.RemapAfterCRPs = 1 << 31
	maxIters := int(authenticache.PossibleCRPs(clusterBenchLines)) / acfg.ChallengeBits / 2
	if b.N > maxIters {
		b.Skipf("b.N=%d would exhaust the CRP registry; use a fixed -benchtime (scripts/bench_cluster.sh)", b.N)
	}

	const nodeCount = 3
	repl := make([]net.Listener, nodeCount)
	client := make([]net.Listener, nodeCount)
	replAddrs := make([]string, nodeCount)
	clientAddrs := make([]string, nodeCount)
	for i := 0; i < nodeCount; i++ {
		for _, slot := range []*net.Listener{&repl[i], &client[i]} {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			*slot = l
		}
		replAddrs[i] = repl[i].Addr().String()
		clientAddrs[i] = client[i].Addr().String()
	}
	dir := b.TempDir()
	nodes := make([]*authenticache.ClusterNode, nodeCount)
	for i := range nodes {
		n, err := authenticache.OpenClusterNode(authenticache.ClusterConfig{
			NodeIndex:         i,
			Peers:             replAddrs,
			ClientPeers:       clientAddrs,
			Dir:               filepath.Join(dir, fmt.Sprintf("node-%d", i)),
			Auth:              acfg,
			Seed:              4242 + uint64(i),
			ReplicaAcks:       1,
			AckTimeout:        5 * time.Second,
			HeartbeatInterval: 25 * time.Millisecond,
			LeaseTimeout:      5 * time.Second,
			RedialInterval:    25 * time.Millisecond,
			ReplListener:      repl[i],
			WAL:               authenticache.WALOptions{FlushInterval: 200 * time.Microsecond, FlushBatch: 8},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Start(dctx); err != nil {
			b.Fatal(err)
		}
		nodes[i] = n
		defer n.Close()
		ws, err := n.NewWireServer(authenticache.WireConfig{})
		if err != nil {
			b.Fatal(err)
		}
		go ws.Serve(dctx, client[i])
		defer ws.Close()
	}
	primary := nodes[0]

	stalls := make([]*fault.Stall, nodeCount)
	for i := range stalls {
		stalls[i] = fault.NewStall()
	}
	router := authenticache.NewRouter(authenticache.RouterConfig{
		ClientPeers:      clientAddrs,
		Self:             -1,
		Dial:             stalledRelayDial(clientAddrs, stalls),
		HedgeDelay:       10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
		ProbeInterval:    25 * time.Millisecond,
		Budget: authenticache.DeadlineBudget{
			Attempts: 2,
			Floor:    50 * time.Millisecond,
			Default:  250 * time.Millisecond,
		},
		Seed: 4242,
	})
	defer router.Close()
	router.Start(dctx)

	const id = authenticache.ClientID("bench-hot")
	m := chaosMap(clusterBenchLines, 100, 4242, 680)
	key, err := primary.Server().Enroll(dctx, id, m)
	if err != nil {
		b.Fatal(err)
	}
	r := authenticache.NewResponder(id, authenticache.NewSimDevice(m), key)
	for _, n := range nodes {
		for !n.Server().Enrolled(id) {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Warm the relay pool and the failure detector: every peer probed,
	// one full transaction through the router.
	for deadline := time.Now().Add(10 * time.Second); ; {
		ps := router.Peers()
		if ps[0].Known && ps[1].Known && ps[2].Known {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("prober never covered the fleet")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ok, err := routerAuth(dctx, router, r); err != nil || !ok {
		b.Fatalf("warmup auth: ok=%v err=%v", ok, err)
	}

	owner := router.Owner(id)
	if stallOwner {
		stalls[owner].Block()
		defer stalls[owner].Heal()
	}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		ok, err := routerAuth(dctx, router, r)
		if err != nil {
			b.Fatalf("op %d: %v", i, err)
		}
		if !ok {
			b.Fatalf("op %d: genuine device rejected", i)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(a, c int) bool { return lat[a] < lat[c] })
	b.ReportMetric(float64(lat[len(lat)/2])/1e6, "p50_ms")
	b.ReportMetric(float64(lat[len(lat)*99/100])/1e6, "p99_ms")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

const clusterBenchLines = 2048

func benchClusterAuth(b *testing.B, nodeCount int, spread bool, replRTT time.Duration) {
	acfg := authenticache.DefaultServerConfig()
	acfg.ChallengeBits = 128
	// A rotation mid-benchmark would splice a remap transaction into
	// the timed loop; a time-based -benchtime could exhaust the hot
	// client's pair space.
	acfg.RemapAfterCRPs = 1 << 31
	maxIters := int(authenticache.PossibleCRPs(clusterBenchLines)) / acfg.ChallengeBits / 2
	if b.N > maxIters {
		b.Skipf("b.N=%d would exhaust the CRP registry; use a fixed -benchtime (scripts/bench_cluster.sh)", b.N)
	}

	lns := make([]net.Listener, nodeCount)
	addrs := make([]string, nodeCount)
	for i := range lns {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = l
		addrs[i] = l.Addr().String()
	}
	// The follower side of the replication link carries the acks and
	// burn proposals; delaying its writes models the full round trip
	// (the primary-to-follower stream stays direct).
	var dial authenticache.ClusterDialFunc
	if replRTT > 0 {
		dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
			var d net.Dialer
			conn, err := d.DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return fault.NewDelayConn(conn, replRTT), nil
		}
	}
	dir := b.TempDir()
	nodes := make([]*authenticache.ClusterNode, nodeCount)
	for i := range nodes {
		n, err := authenticache.OpenClusterNode(authenticache.ClusterConfig{
			NodeIndex:         i,
			Peers:             addrs,
			Dir:               filepath.Join(dir, fmt.Sprintf("node-%d", i)),
			Auth:              acfg,
			Seed:              4242 + uint64(i),
			ReplicaAcks:       min(1, nodeCount-1),
			AckTimeout:        5 * time.Second,
			HeartbeatInterval: 25 * time.Millisecond,
			LeaseTimeout:      5 * time.Second,
			RedialInterval:    25 * time.Millisecond,
			ReplListener:      lns[i],
			Dial:              dial,
			// A tight group-commit window keeps the WAL's flush
			// latency out of the replication-lock comparison.
			WAL: authenticache.WALOptions{FlushInterval: 200 * time.Microsecond, FlushBatch: 8},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Start(dctx); err != nil {
			b.Fatal(err)
		}
		nodes[i] = n
		defer n.Close()
	}
	primary := nodes[0]

	const id = authenticache.ClientID("bench-hot")
	m := chaosMap(clusterBenchLines, 100, 4242, 680)
	key, err := primary.Server().Enroll(dctx, id, m)
	if err != nil {
		b.Fatal(err)
	}
	r := authenticache.NewResponder(id, authenticache.NewSimDevice(m), key)

	// Wait for the replicas to hold the enrollment, then warm every
	// node's per-client field cache so the steady state is measured.
	for _, n := range nodes {
		for !n.Server().Enrolled(id) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	backends := make([]authenticache.TxBackend, nodeCount)
	for i, n := range nodes {
		backends[i] = n.Backend()
	}
	roundTrip := func(be authenticache.TxBackend) error {
		ch, err := be.BeginAuth(dctx, id)
		if err != nil {
			return err
		}
		resp, err := r.Respond(ch)
		if err != nil {
			return err
		}
		_, err = be.FinishAuth(dctx, id, ch.ID, resp)
		return err
	}
	for _, be := range backends {
		if err := roundTrip(be); err != nil {
			b.Fatal(err)
		}
	}

	// Spread mode sends client traffic to the followers only: a
	// transaction served directly by the primary holds the hot
	// client's record lock across its whole issue path, convoying the
	// delegated burns that need the same lock for far shorter spans.
	var ctr int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			be := backends[0]
			if spread {
				be = backends[1+int(atomic.AddInt64(&ctr, 1))%(len(backends)-1)]
			}
			if err := roundTrip(be); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}
